#include "model_format/snapshot_v2.h"

#include <algorithm>
#include <bit>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "model_format/codec_internal.h"
#include "model_format/delta_snapshot.h"
#include "model_format/model_snapshot.h"
#include "util/binary_io.h"
#include "util/bounded_reader.h"
#include "util/checked.h"
#include "util/logging.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

using snapshot_internal::DecodeOptionsPayload;
using snapshot_internal::EncodeOptionsPayload;
using snapshot_internal::kHeaderBytes;
using snapshot_internal::kTableEntryBytes;
using snapshot_internal::SectionName;

constexpr uint64_t kSectionAlign = 64;
constexpr size_t kSubsetEntryBytes = 8 + 8 + 8 + 8 + 4 + 4;
constexpr size_t kPoolRefEntryBytes = 4 + 4 + 8;
constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;

uint64_t Align64(uint64_t offset) {
  return (offset + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

// ---------------------------------------------------------------------------
// Writer.

// The wire format stores floats as little-endian IEEE-754; on a
// little-endian host the in-memory array already is those bytes.
void AppendFloatSpan(std::string* out, std::span<const float> values) {
  if constexpr (kHostIsLittleEndian) {
    // Trusted in-memory source: `values` is the model's own array on the
    // encode path, not wire bytes, and the copy length comes from the
    // span itself.
    // NOLINTNEXTLINE(unsafe-bytes)
    out->append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(float));
  } else {
    for (float v : values) AppendF32(out, v);
  }
}

void AppendHalfSpan(std::string* out, std::span<const uint16_t> values) {
  if constexpr (kHostIsLittleEndian) {
    // Trusted in-memory source: same as AppendFloatSpan above.
    // NOLINTNEXTLINE(unsafe-bytes)
    out->append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(uint16_t));
  } else {
    for (uint16_t v : values) AppendU16(out, v);
  }
}

// f32 -> f16 quantization of a span (round-to-nearest-even, saturating;
// monotone, so a sorted span quantizes to a sorted span).
void AppendQuantizedSpan(std::string* out, std::span<const float> values) {
  for (float v : values) AppendU16(out, simd::FloatToHalf(v));
}

// f16 -> f32 exact widening of a span.
void AppendWidenedSpan(std::string* out, std::span<const uint16_t> values) {
  for (uint16_t v : values) AppendF32(out, simd::HalfToFloat(v));
}

// One subset's observation or tree array into the bulk payload being
// built, converting between storage widths as the target encoding asks.
void AppendObsSpan(std::string* out, bool write_f16,
                   std::span<const float> f32, std::span<const uint16_t> f16,
                   bool source_half) {
  if (write_f16) {
    if (source_half) {
      AppendHalfSpan(out, f16);  // verbatim: load -> save is bit-identical
    } else {
      AppendQuantizedSpan(out, f32);
    }
  } else {
    if (source_half) {
      AppendWidenedSpan(out, f16);
    } else {
      AppendFloatSpan(out, f32);
    }
  }
}

// Sorted-unique interned strings. Sorting makes the pool (and every
// pool-ref entry) a pure function of the string *set*, which is what
// keeps decode -> re-encode bit-identical.
class StringPool {
 public:
  void Add(std::string_view s) { strings_.push_back(s); }

  void Build() {
    std::sort(strings_.begin(), strings_.end());
    strings_.erase(std::unique(strings_.begin(), strings_.end()),
                   strings_.end());
    offsets_.reserve(strings_.size());
    uint64_t offset = 0;
    for (std::string_view s : strings_) {
      offsets_.push_back(static_cast<uint32_t>(offset));
      offset += s.size();
    }
    total_bytes_ = offset;
  }

  std::pair<uint32_t, uint32_t> Ref(std::string_view s) const {
    auto it = std::lower_bound(strings_.begin(), strings_.end(), s);
    UNIDETECT_CHECK(it != strings_.end() && *it == s);
    return {offsets_[static_cast<size_t>(it - strings_.begin())],
            static_cast<uint32_t>(s.size())};
  }

  std::string Payload() const {
    std::string out;
    AppendU64(&out, total_bytes_);
    out.reserve(out.size() + total_bytes_);
    for (std::string_view s : strings_) out.append(s);
    return out;
  }

 private:
  std::vector<std::string_view> strings_;
  std::vector<uint32_t> offsets_;
  uint64_t total_bytes_ = 0;
};

void AppendPoolRefEntries(
    std::string* out, const StringPool& pool,
    std::vector<std::pair<std::string_view, uint64_t>>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, count] : *entries) {
    const auto [off, len] = pool.Ref(key);
    AppendU32(out, off);
    AppendU32(out, len);
    AppendU64(out, count);
  }
}

// ---------------------------------------------------------------------------
// Decoder.

struct ParsedV2 {
  std::string_view options;
  std::string_view pool;  // the interned bytes, after the u64 count
  std::string_view index_entries;
  uint64_t subset_count = 0;
  uint64_t total_obs_floats = 0;
  uint64_t total_tree_floats = 0;
  bool half = false;            // bulk sections are f16 (ids 11/12), not f32
  std::string_view obs_bytes;   // raw f32 (or f16) bytes; empty when none
  std::string_view tree_bytes;  // raw f32 (or f16) bytes; empty when none
  std::string_view token_payload;
  std::string_view pattern_payload;
};

/// Structural parse + (validation-dependent) CRC pass. On success every
/// view in `out` points into `bytes`.
Status ParseV2(std::string_view bytes, SnapshotValidation validation,
               ParsedV2* out) {
  BinaryReader reader(bytes);
  std::string_view magic;
  if (!reader.ReadBytes(kSnapshotMagic.size(), &magic) ||
      magic != kSnapshotMagic) {
    return Status::Corruption("Model snapshot: bad magic");
  }
  uint32_t version = 0;
  uint32_t section_count = 0;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&section_count)) {
    return Status::Corruption("Model snapshot: truncated header");
  }
  if (version > kSnapshotVersion) {
    return Status::NotImplemented(
        StrCat("Model snapshot: format version ", version,
               " is newer than the supported version ", kSnapshotVersion,
               "; upgrade the reader"));
  }
  if (version != 2) {
    return Status::Corruption(
        StrCat("Model snapshot: not a v2 snapshot (version ", version, ")"));
  }

  struct Entry {
    uint32_t id = 0;
    uint32_t crc = 0;
    std::string_view payload;
  };
  // The table size is validated against the file BEFORE the reserve: a
  // crafted section_count must not drive a multi-gigabyte allocation
  // (std::bad_alloc is a crash, not a typed Corruption).
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t table_bytes,
      CheckedMul<uint64_t>(section_count, kTableEntryBytes,
                           "snapshot section table"));
  if (table_bytes > reader.remaining()) {
    return Status::Corruption("Model snapshot: truncated section table");
  }
  std::vector<Entry> entries;
  entries.reserve(section_count);
  const BoundedReader file(bytes, "Model snapshot");
  uint32_t prev_id = 0;
  // Canonical packing: payloads are contiguous in table order, each
  // offset rounded up to a 64-byte boundary with zero padding between,
  // and the file ends at the last payload byte. The padding bytes are
  // outside every CRC, so the explicit zero check is what catches
  // corruption there; the exact-end rule is what makes any truncation a
  // bounds failure.
  uint64_t expected_end = kHeaderBytes + table_bytes;
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint32_t crc = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    if (!reader.ReadU32(&id) || !reader.ReadU32(&crc) ||
        !reader.ReadU64(&offset) || !reader.ReadU64(&length)) {
      return Status::Corruption("Model snapshot: truncated section table");
    }
    if (id <= prev_id) {
      return Status::Corruption(
          "Model snapshot: section ids not strictly ascending");
    }
    prev_id = id;
    if (length == 0) {
      return Status::Corruption(
          StrCat("Model snapshot: zero-length ", SectionName(id), " section"));
    }
    // The section end is computed overflow-checked BEFORE the bounds
    // compare: a crafted offset/length pair near 2^64 must not wrap the
    // sum below the file size.
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t section_end,
        CheckedAdd<uint64_t>(offset, length, "snapshot section extent"));
    if (section_end > bytes.size()) {
      return Status::Corruption(
          StrCat("Model snapshot: ", SectionName(id),
                 " section extends past end of file (truncated?)"));
    }
    if (offset % kSectionAlign != 0) {
      return Status::Corruption(
          StrCat("Model snapshot: ", SectionName(id),
                 " section offset is not 64-byte aligned"));
    }
    if (offset != Align64(expected_end)) {
      return Status::Corruption(
          StrCat("Model snapshot: ", SectionName(id),
                 " section is not canonically packed"));
    }
    for (uint64_t p = expected_end; p < offset; ++p) {
      if (bytes[static_cast<size_t>(p)] != '\0') {
        return Status::Corruption(
            "Model snapshot: nonzero padding between sections");
      }
    }
    expected_end = section_end;
    UNIDETECT_ASSIGN_OR_RETURN(const std::string_view payload,
                               file.SubSpan(offset, length));
    entries.push_back(Entry{id, crc, payload});
  }
  if (expected_end != bytes.size()) {
    return Status::Corruption(
        "Model snapshot: trailing bytes after last section");
  }

  for (const Entry& entry : entries) {
    // The bulk payloads are the whole point of deferred validation:
    // checksumming them would make reload linear in observation count.
    if (validation == SnapshotValidation::kDeferPayload &&
        (entry.id == static_cast<uint32_t>(SnapshotSection::kObservations) ||
         entry.id == static_cast<uint32_t>(SnapshotSection::kTreeLevels) ||
         entry.id ==
             static_cast<uint32_t>(SnapshotSection::kObservationsF16) ||
         entry.id == static_cast<uint32_t>(SnapshotSection::kTreeLevelsF16))) {
      continue;
    }
    if (Crc32(entry.payload) != entry.crc) {
      return Status::Corruption(StrCat("Model snapshot: checksum mismatch in ",
                                       SectionName(entry.id), " section"));
    }
  }

  auto find_section = [&](SnapshotSection id) -> const Entry* {
    for (const Entry& entry : entries) {
      if (entry.id == static_cast<uint32_t>(id)) return &entry;
    }
    return nullptr;
  };
  // Unknown section ids are skipped: additive sections are readable by
  // older readers; incompatible layout changes bump kSnapshotVersion.
  for (SnapshotSection required :
       {SnapshotSection::kOptions, SnapshotSection::kStringPool,
        SnapshotSection::kSubsetIndex, SnapshotSection::kTokenIndex2,
        SnapshotSection::kPatternIndex2}) {
    if (find_section(required) == nullptr) {
      return Status::Corruption(
          StrCat("Model snapshot: missing ",
                 SectionName(static_cast<uint32_t>(required)), " section"));
    }
  }

  out->options = find_section(SnapshotSection::kOptions)->payload;

  {
    const std::string_view payload =
        find_section(SnapshotSection::kStringPool)->payload;
    BinaryReader pool_reader(payload);
    uint64_t pool_bytes = 0;
    if (!pool_reader.ReadU64(&pool_bytes) ||
        pool_reader.remaining() != pool_bytes) {
      return Status::Corruption(
          "Model snapshot: string pool size does not match its section");
    }
    out->pool = payload.substr(8);
  }

  {
    const std::string_view payload =
        find_section(SnapshotSection::kSubsetIndex)->payload;
    BinaryReader index_reader(payload);
    if (!index_reader.ReadU64(&out->subset_count) ||
        !index_reader.ReadU64(&out->total_obs_floats) ||
        !index_reader.ReadU64(&out->total_tree_floats)) {
      return Status::Corruption("Model snapshot: truncated subset index");
    }
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t index_bytes,
        CheckedMul<uint64_t>(out->subset_count, kSubsetEntryBytes,
                             "snapshot subset index"));
    if (index_reader.remaining() != index_bytes) {
      return Status::Corruption(
          "Model snapshot: subset index size does not match its count");
    }
    out->index_entries = payload.substr(24);
  }

  // The bulk sections exist exactly when they have content (a zero-byte
  // section is invalid by the container rules). A file carries EITHER the
  // f32 family {7, 8} or the f16 family {11, 12} — mixing widths within
  // one snapshot is rejected.
  const bool has_f32 =
      find_section(SnapshotSection::kObservations) != nullptr ||
      find_section(SnapshotSection::kTreeLevels) != nullptr;
  const bool has_f16 =
      find_section(SnapshotSection::kObservationsF16) != nullptr ||
      find_section(SnapshotSection::kTreeLevelsF16) != nullptr;
  if (has_f32 && has_f16) {
    return Status::Corruption(
        "Model snapshot: both f32 and f16 observation sections present");
  }
  out->half = has_f16;
  const uint64_t elem_bytes =
      out->half ? sizeof(uint16_t) : sizeof(float);
  for (const auto& [id, total, dest] :
       {std::tuple{out->half ? SnapshotSection::kObservationsF16
                             : SnapshotSection::kObservations,
                   out->total_obs_floats, &out->obs_bytes},
        std::tuple{out->half ? SnapshotSection::kTreeLevelsF16
                             : SnapshotSection::kTreeLevels,
                   out->total_tree_floats, &out->tree_bytes}}) {
    const Entry* entry = find_section(id);
    if (total == 0) {
      if (entry != nullptr) {
        return Status::Corruption(
            StrCat("Model snapshot: unexpected ",
                   SectionName(static_cast<uint32_t>(id)), " section"));
      }
      continue;
    }
    if (entry == nullptr) {
      return Status::Corruption(
          StrCat("Model snapshot: missing ",
                 SectionName(static_cast<uint32_t>(id)), " section"));
    }
    // Overflow-checked: a total near 2^64 must not wrap total * elem
    // down to the (small) actual section size and then back huge
    // per-subset spans out of the mapped file.
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t total_bytes,
        CheckedMul<uint64_t>(total, elem_bytes, "snapshot bulk section"));
    if (entry->payload.size() != total_bytes) {
      return Status::Corruption(
          StrCat("Model snapshot: ", SectionName(static_cast<uint32_t>(id)),
                 " section size does not match the subset index totals"));
    }
    *dest = entry->payload;
  }

  out->token_payload = find_section(SnapshotSection::kTokenIndex2)->payload;
  out->pattern_payload =
      find_section(SnapshotSection::kPatternIndex2)->payload;
  return Status::OK();
}

Status DecodeSubsets(const ParsedV2& parsed, SnapshotValidation validation,
                     bool zero_copy, Model* model) {
  BinaryReader reader(parsed.index_entries);
  // Every span below is carved from the bulk sections through
  // BoundedReader, which overflow-checks offset-plus-count and (on the
  // zero-copy path) verifies overlay alignment — the mmap base is
  // page-aligned and the section offsets 64-aligned, so alignment holds
  // for well-formed files.
  const BoundedReader obs_reader(parsed.obs_bytes, "observations section");
  const BoundedReader tree_reader(parsed.tree_bytes, "tree section");
  uint64_t running_obs = 0;
  uint64_t running_tree = 0;
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < parsed.subset_count; ++i) {
    uint64_t key = 0;
    uint64_t obs_off = 0;
    uint64_t count = 0;
    uint64_t tree_off = 0;
    uint32_t tree_levels = 0;
    uint32_t reserved = 0;
    reader.ReadU64(&key);  // entry count pre-validated against remaining()
    reader.ReadU64(&obs_off);
    reader.ReadU64(&count);
    reader.ReadU64(&tree_off);
    reader.ReadU32(&tree_levels);
    reader.ReadU32(&reserved);
    if (i > 0 && key <= prev_key) {
      return Status::Corruption(
          "Model snapshot: subset keys not strictly ascending");
    }
    prev_key = key;
    if (reserved != 0) {
      return Status::Corruption(
          "Model snapshot: nonzero reserved field in subset index");
    }
    // Canonical packing: offsets are the running sums and the tree shape
    // is the one Finalize() would build. This pins a unique encoding for
    // every model (bit-identical re-encode) and bounds every span.
    UNIDETECT_ASSIGN_OR_RETURN(const size_t count_sz,
                               CheckedCast<size_t>(count, "subset count"));
    const uint64_t expected_levels = SubsetStats::TreeLevelsFor(count_sz);
    if (obs_off != running_obs || tree_off != running_tree ||
        tree_levels != expected_levels) {
      return Status::Corruption(
          "Model snapshot: subset index is not canonically packed");
    }
    if (count > (parsed.total_obs_floats - running_obs) / 2) {
      return Status::Corruption(
          "Model snapshot: subset observations exceed section total");
    }
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t tree_count,
        CheckedMul<uint64_t>(expected_levels, count, "subset tree size"));
    if (tree_count > parsed.total_tree_floats - running_tree) {
      return Status::Corruption(
          "Model snapshot: subset tree exceeds section total");
    }
    // The pres array sits at obs_off, the posts array right after it.
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t posts_off,
        CheckedAdd<uint64_t>(obs_off, count, "subset observations extent"));
    Result<SubsetStats> stats = [&]() -> Result<SubsetStats> {
      const bool validate_sorted = validation == SnapshotValidation::kFull;
      if (zero_copy && parsed.half) {
        UNIDETECT_ASSIGN_OR_RETURN(
            const std::span<const uint16_t> pres,
            obs_reader.Overlay<uint16_t>(obs_off, count));
        UNIDETECT_ASSIGN_OR_RETURN(
            const std::span<const uint16_t> posts,
            obs_reader.Overlay<uint16_t>(posts_off, count));
        UNIDETECT_ASSIGN_OR_RETURN(
            const std::span<const uint16_t> tree,
            tree_reader.Overlay<uint16_t>(tree_off, tree_count));
        return SubsetStats::FromBorrowedSortedHalf(pres, posts, tree,
                                                   validate_sorted);
      }
      if (zero_copy) {
        UNIDETECT_ASSIGN_OR_RETURN(const std::span<const float> pres,
                                   obs_reader.Overlay<float>(obs_off, count));
        UNIDETECT_ASSIGN_OR_RETURN(
            const std::span<const float> posts,
            obs_reader.Overlay<float>(posts_off, count));
        UNIDETECT_ASSIGN_OR_RETURN(
            const std::span<const float> tree,
            tree_reader.Overlay<float>(tree_off, tree_count));
        return SubsetStats::FromBorrowedSorted(pres, posts, tree,
                                               validate_sorted);
      }
      if (parsed.half) {
        UNIDETECT_ASSIGN_OR_RETURN(
            std::vector<uint16_t> pres,
            obs_reader.CopyArray<uint16_t>(obs_off, count));
        UNIDETECT_ASSIGN_OR_RETURN(
            std::vector<uint16_t> posts,
            obs_reader.CopyArray<uint16_t>(posts_off, count));
        UNIDETECT_ASSIGN_OR_RETURN(
            std::vector<uint16_t> tree,
            tree_reader.CopyArray<uint16_t>(tree_off, tree_count));
        return SubsetStats::FromSortedHalfArraysWithTree(
            std::move(pres), std::move(posts), std::move(tree));
      }
      UNIDETECT_ASSIGN_OR_RETURN(std::vector<float> pres,
                                 obs_reader.CopyArray<float>(obs_off, count));
      UNIDETECT_ASSIGN_OR_RETURN(
          std::vector<float> posts,
          obs_reader.CopyArray<float>(posts_off, count));
      UNIDETECT_ASSIGN_OR_RETURN(
          std::vector<float> tree,
          tree_reader.CopyArray<float>(tree_off, tree_count));
      return SubsetStats::FromSortedArraysWithTree(
          std::move(pres), std::move(posts), std::move(tree));
    }();
    if (!stats.ok()) return stats.status();
    model->InsertSubsetSorted(FeatureKey{key}, std::move(stats).ValueOrDie());
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t obs_pair,
        CheckedMul<uint64_t>(count, 2, "subset observation pair"));
    UNIDETECT_ASSIGN_OR_RETURN(
        running_obs,
        CheckedAdd<uint64_t>(running_obs, obs_pair, "observations total"));
    UNIDETECT_ASSIGN_OR_RETURN(
        running_tree,
        CheckedAdd<uint64_t>(running_tree, tree_count, "tree total"));
  }
  if (running_obs != parsed.total_obs_floats ||
      running_tree != parsed.total_tree_floats) {
    return Status::Corruption(
        "Model snapshot: subset index totals do not match its entries");
  }
  return Status::OK();
}

Status PoolString(std::string_view pool, uint32_t off, uint32_t len,
                  std::string_view* out) {
  if (off > pool.size() || len > pool.size() - off) {
    return Status::Corruption(
        "Model snapshot: pool reference out of bounds");
  }
  *out = pool.substr(off, len);
  return Status::OK();
}

Status DecodeTokenIndexV2(const ParsedV2& parsed, Model* model) {
  BinaryReader reader(parsed.token_payload);
  uint64_t num_tables = 0;
  uint64_t num_tokens = 0;
  if (!reader.ReadU64(&num_tables) || !reader.ReadU64(&num_tokens)) {
    return Status::Corruption(
        "Model snapshot: token index section size mismatch");
  }
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t token_entry_bytes,
      CheckedMul<uint64_t>(num_tokens, kPoolRefEntryBytes, "token index"));
  if (reader.remaining() != token_entry_bytes) {
    return Status::Corruption(
        "Model snapshot: token index section size mismatch");
  }
  TokenIndex* index = model->mutable_token_index();
  index->SetNumTables(num_tables);
  for (uint64_t i = 0; i < num_tokens; ++i) {
    uint32_t off = 0;
    uint32_t len = 0;
    uint64_t count = 0;
    reader.ReadU32(&off);
    reader.ReadU32(&len);
    reader.ReadU64(&count);
    std::string_view token;
    UNIDETECT_RETURN_NOT_OK(PoolString(parsed.pool, off, len, &token));
    if (!index->AddTokenCount(token, count)) {
      return Status::Corruption("Model snapshot: duplicate token entry");
    }
  }
  return Status::OK();
}

Status DecodePatternIndexV2(const ParsedV2& parsed, Model* model) {
  BinaryReader reader(parsed.pattern_payload);
  uint64_t num_columns = 0;
  uint64_t num_patterns = 0;
  uint64_t num_pairs = 0;
  if (!reader.ReadU64(&num_columns) || !reader.ReadU64(&num_patterns) ||
      !reader.ReadU64(&num_pairs)) {
    return Status::Corruption(
        "Model snapshot: pattern index section size mismatch");
  }
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t num_keys,
      CheckedAdd<uint64_t>(num_patterns, num_pairs, "pattern index count"));
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t pattern_entry_bytes,
      CheckedMul<uint64_t>(num_keys, kPoolRefEntryBytes, "pattern index"));
  if (reader.remaining() != pattern_entry_bytes) {
    return Status::Corruption(
        "Model snapshot: pattern index section size mismatch");
  }
  PatternIndex* index = model->mutable_pattern_index();
  index->SetNumColumns(num_columns);
  for (uint64_t i = 0; i < num_keys; ++i) {
    uint32_t off = 0;
    uint32_t len = 0;
    uint64_t count = 0;
    reader.ReadU32(&off);
    reader.ReadU32(&len);
    reader.ReadU64(&count);
    std::string_view key;
    UNIDETECT_RETURN_NOT_OK(PoolString(parsed.pool, off, len, &key));
    const bool inserted = i < num_patterns ? index->AddPatternCount(key, count)
                                           : index->AddPairCount(key, count);
    if (!inserted) {
      return Status::Corruption("Model snapshot: duplicate pattern entry");
    }
  }
  return Status::OK();
}

Result<Model> BuildModelFromParsed(const ParsedV2& parsed,
                                   SnapshotValidation validation,
                                   bool zero_copy) {
  auto options = DecodeOptionsPayload(parsed.options);
  if (!options.ok()) return options.status();
  Model model(std::move(options).ValueOrDie());
  UNIDETECT_RETURN_NOT_OK(
      DecodeSubsets(parsed, validation, zero_copy, &model));
  UNIDETECT_RETURN_NOT_OK(DecodeTokenIndexV2(parsed, &model));
  UNIDETECT_RETURN_NOT_OK(DecodePatternIndexV2(parsed, &model));
  model.Finalize();
  return model;
}

}  // namespace

std::string EncodeModelSnapshotV2(const Model& model,
                                  ObservationEncoding encoding,
                                  const DeltaManifest* manifest) {
  UNIDETECT_CHECK(model.finalized());

  // Pick the output width. kPreserve follows the model's own storage —
  // which is uniform across subsets (a model is either a half-precision
  // load or a full-precision build, never a mix), checked below.
  bool any_half = false;
  bool all_half = true;
  model.ForEachSubsetSorted([&](FeatureKey, const SubsetStats& stats) {
    if (stats.half()) {
      any_half = true;
    } else {
      all_half = false;
    }
  });
  UNIDETECT_CHECK(!any_half || all_half);
  const bool write_f16 =
      encoding == ObservationEncoding::kF16 ||
      (encoding == ObservationEncoding::kPreserve && any_half);

  StringPool pool;
  model.token_index().ForEachToken(
      [&](const std::string& token, uint64_t) { pool.Add(token); });
  model.pattern_index().ForEachPattern(
      [&](const std::string& pattern, uint64_t) { pool.Add(pattern); });
  model.pattern_index().ForEachPair(
      [&](const std::string& pair, uint64_t) { pool.Add(pair); });
  pool.Build();
  std::string pool_payload = pool.Payload();

  // Subset directory plus the two bulk payloads, packed in key order.
  std::string index_payload;
  std::string obs_payload;
  std::string tree_payload;
  uint64_t total_obs_floats = 0;
  uint64_t total_tree_floats = 0;
  AppendU64(&index_payload, model.num_subsets());
  AppendU64(&index_payload, 0);  // patched below
  AppendU64(&index_payload, 0);
  model.ForEachSubsetSorted([&](FeatureKey key, const SubsetStats& stats) {
    const uint64_t count = stats.size();
    const uint64_t levels = stats.tree_levels();
    AppendU64(&index_payload, key.packed);
    AppendU64(&index_payload, total_obs_floats);
    AppendU64(&index_payload, count);
    AppendU64(&index_payload, total_tree_floats);
    AppendU32(&index_payload, static_cast<uint32_t>(levels));
    AppendU32(&index_payload, 0);  // reserved
    const bool source_half = stats.half();
    AppendObsSpan(&obs_payload, write_f16, stats.pres(), stats.pres_f16(),
                  source_half);
    AppendObsSpan(&obs_payload, write_f16, stats.posts(), stats.posts_f16(),
                  source_half);
    AppendObsSpan(&tree_payload, write_f16, stats.tree_data(),
                  stats.tree_data_f16(), source_half);
    total_obs_floats += 2 * count;
    total_tree_floats += levels * count;
  });
  {
    std::string totals;
    AppendU64(&totals, total_obs_floats);
    AppendU64(&totals, total_tree_floats);
    index_payload.replace(8, 16, totals);
  }

  std::string token_payload;
  {
    AppendU64(&token_payload, model.token_index().num_tables());
    AppendU64(&token_payload, model.token_index().num_tokens());
    std::vector<std::pair<std::string_view, uint64_t>> entries;
    entries.reserve(model.token_index().num_tokens());
    model.token_index().ForEachToken(
        [&](const std::string& token, uint64_t count) {
          entries.emplace_back(token, count);
        });
    AppendPoolRefEntries(&token_payload, pool, &entries);
  }

  std::string pattern_payload;
  {
    AppendU64(&pattern_payload, model.pattern_index().num_columns());
    AppendU64(&pattern_payload, model.pattern_index().num_patterns());
    AppendU64(&pattern_payload, model.pattern_index().num_pairs());
    std::vector<std::pair<std::string_view, uint64_t>> patterns;
    patterns.reserve(model.pattern_index().num_patterns());
    model.pattern_index().ForEachPattern(
        [&](const std::string& pattern, uint64_t count) {
          patterns.emplace_back(pattern, count);
        });
    AppendPoolRefEntries(&pattern_payload, pool, &patterns);
    std::vector<std::pair<std::string_view, uint64_t>> pairs;
    pairs.reserve(model.pattern_index().num_pairs());
    model.pattern_index().ForEachPair(
        [&](const std::string& pair, uint64_t count) {
          pairs.emplace_back(pair, count);
        });
    AppendPoolRefEntries(&pattern_payload, pool, &pairs);
  }

  std::vector<std::pair<SnapshotSection, const std::string*>> sections;
  std::string options_payload = EncodeOptionsPayload(model.options());
  sections.emplace_back(SnapshotSection::kOptions, &options_payload);
  sections.emplace_back(SnapshotSection::kStringPool, &pool_payload);
  sections.emplace_back(SnapshotSection::kSubsetIndex, &index_payload);
  if (!write_f16 && !obs_payload.empty()) {
    sections.emplace_back(SnapshotSection::kObservations, &obs_payload);
  }
  if (!write_f16 && !tree_payload.empty()) {
    sections.emplace_back(SnapshotSection::kTreeLevels, &tree_payload);
  }
  sections.emplace_back(SnapshotSection::kTokenIndex2, &token_payload);
  sections.emplace_back(SnapshotSection::kPatternIndex2, &pattern_payload);
  // The f16 sections live above every f32-era id, keeping the table's
  // strictly-ascending-id invariant without renumbering.
  if (write_f16 && !obs_payload.empty()) {
    sections.emplace_back(SnapshotSection::kObservationsF16, &obs_payload);
  }
  if (write_f16 && !tree_payload.empty()) {
    sections.emplace_back(SnapshotSection::kTreeLevelsF16, &tree_payload);
  }
  // The delta manifest's id (13) sits above every other section id, so
  // appending it last keeps the table strictly ascending.
  std::string manifest_payload;
  if (manifest != nullptr) {
    manifest_payload = EncodeDeltaManifestPayload(*manifest);
    sections.emplace_back(SnapshotSection::kDeltaManifest, &manifest_payload);
  }

  std::string out;
  out.append(kSnapshotMagic);
  AppendU32(&out, kSnapshotVersion);
  AppendU32(&out, static_cast<uint32_t>(sections.size()));
  uint64_t offset = kHeaderBytes + sections.size() * kTableEntryBytes;
  std::vector<uint64_t> offsets;
  offsets.reserve(sections.size());
  for (const auto& [id, payload] : sections) {
    offset = Align64(offset);
    offsets.push_back(offset);
    AppendU32(&out, static_cast<uint32_t>(id));
    AppendU32(&out, Crc32(*payload));
    AppendU64(&out, offset);
    AppendU64(&out, payload->size());
    offset += payload->size();
  }
  out.reserve(static_cast<size_t>(offset));
  for (size_t i = 0; i < sections.size(); ++i) {
    out.resize(static_cast<size_t>(offsets[i]), '\0');  // zero padding
    out.append(*sections[i].second);
  }
  return out;
}

Result<Model> DecodeModelSnapshotV2(std::string_view bytes,
                                    SnapshotValidation validation) {
  ParsedV2 parsed;
  UNIDETECT_RETURN_NOT_OK(ParseV2(bytes, validation, &parsed));
  return BuildModelFromParsed(parsed, validation, /*zero_copy=*/false);
}

Result<Model> ModelFromSnapshotRegion(std::shared_ptr<MmapRegion> region,
                                      SnapshotValidation validation) {
  const std::string_view bytes = region->bytes();
  if (!kHostIsLittleEndian || SnapshotVersionOf(bytes) < 2) {
    // Big-endian hosts must byte-swap (owned decode); pre-v2 files have
    // no flat layout to borrow from. Either way the region is dropped
    // after the copy.
    return DecodeModelSnapshot(bytes, validation);
  }
  ParsedV2 parsed;
  UNIDETECT_RETURN_NOT_OK(ParseV2(bytes, validation, &parsed));
  auto model = BuildModelFromParsed(parsed, validation, /*zero_copy=*/true);
  if (!model.ok()) return model.status();
  const uint64_t mapped = bytes.size();
  model->SetBacking(std::move(region), mapped);
  return model;
}

}  // namespace unidetect
