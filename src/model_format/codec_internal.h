// Internal helpers shared between the v1 (model_snapshot.cc) and v2
// (snapshot_v2.cc) snapshot codecs. Not part of the public API.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "learn/model.h"
#include "util/result.h"

namespace unidetect {
namespace snapshot_internal {

inline constexpr size_t kHeaderBytes = 8 + 4 + 4;
inline constexpr size_t kTableEntryBytes = 4 + 4 + 8 + 8;

/// \brief The options payload is version-independent (section id 1 in
/// both layouts).
std::string EncodeOptionsPayload(const ModelOptions& options);
Result<ModelOptions> DecodeOptionsPayload(std::string_view payload);

/// \brief Human-readable section name for error messages.
std::string SectionName(uint32_t id);

}  // namespace snapshot_internal
}  // namespace unidetect
