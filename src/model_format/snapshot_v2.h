// UDSNAP v2: the flat, offset-based, 64-byte-aligned snapshot layout
// (DESIGN.md §12) that serving maps read-only and queries in place.
//
// Section payloads (inside the container of model_snapshot.h):
//
//   kOptions       same fixed-width payload as v1
//   kStringPool    u64 byte_count, then the concatenated bytes of every
//                  interned string (tokens, patterns, pattern-pair keys)
//                  in sorted-unique order
//   kSubsetIndex   u64 subset_count, u64 total_obs_floats,
//                  u64 total_tree_floats, then subset_count entries of
//                  { u64 feature_key, u64 obs_off, u64 count,
//                    u64 tree_off, u32 tree_levels, u32 reserved = 0 }
//                  in strictly ascending key order
//   kObservations  raw f32 array (present iff total_obs_floats > 0):
//                  per subset, pres[count] then posts[count], packed in
//                  index order — obs_off is the float offset of pres
//   kTreeLevels    raw f32 array (present iff total_tree_floats > 0):
//                  per subset, the flat merge-sort tree
//                  (tree_levels * count floats) at float offset tree_off
//   kTokenIndex2   u64 num_tables, u64 num_tokens, then per token
//                  (sorted) { u32 pool_off, u32 pool_len, u64 count }
//   kPatternIndex2 u64 num_columns, u64 num_patterns, u64 num_pairs,
//                  then pattern entries and pair entries (each sorted)
//                  of the same pool-ref shape
//
// Canonical packing is part of the format: section payloads are laid out
// contiguously in table order, each offset rounded up to a multiple of
// 64 with zero padding bytes between (so corruption in padding is
// detected even though padding is outside every CRC), and the file ends
// exactly at the last payload byte (so truncating even one byte fails
// the bounds check). obs_off / tree_off must equal the running sums and
// tree_levels must equal SubsetStats::TreeLevelsFor(count) — validating
// the exact packing is O(subset_count) and makes re-encoding a decoded
// snapshot bit-identical.
//
// Zero-copy rules: the mmap base is page-aligned and every section
// offset is 64-aligned, so casting a mapped observation section to
// `const float*` is alignment-safe (UBSan-checked in CI). Zero-copy
// additionally requires a little-endian host (the wire format is
// little-endian); big-endian hosts transparently fall back to the owned
// byte-swapping decode.

#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "learn/model.h"
#include "model_format/snapshot_validation.h"
#include "util/mmap_file.h"
#include "util/result.h"

namespace unidetect {

struct DeltaManifest;

/// \brief Observation storage written by the v2 encoder.
///
/// kF16 stores observations and tree levels as IEEE 754 binary16
/// (sections kObservationsF16/kTreeLevelsF16 instead of the f32
/// sections), halving the bulk payload. Quantization rounds to nearest-
/// even and is monotone, so sorted arrays stay sorted and the serialized
/// tree remains a valid merge-sort tree of the quantized posts; queries
/// then run over the dequantized (exactly widened) values. kPreserve —
/// the default, used by Model::Save — keeps whatever storage the model
/// already has, which makes an f16 load -> save round trip bit-identical.
/// kF32 dequantizes an f16 model back to full f32 sections.
enum class ObservationEncoding {
  kPreserve,
  kF32,
  kF16,
};

/// \brief Encodes a finalized model in the v2 flat layout. A non-null
/// `manifest` additionally writes the kDeltaManifest section, marking
/// the output as a *delta* artifact chained to its base snapshot
/// (model_format/delta_snapshot.h).
std::string EncodeModelSnapshotV2(
    const Model& model,
    ObservationEncoding encoding = ObservationEncoding::kPreserve,
    const DeltaManifest* manifest = nullptr);

/// \brief Owned decode of a v2 blob: observation and tree floats are
/// copied out of `bytes` (which therefore needs no particular alignment
/// and may be freed afterwards).
Result<Model> DecodeModelSnapshotV2(std::string_view bytes,
                                    SnapshotValidation validation);

/// \brief Zero-copy decode of a mapped v2 snapshot: the returned model's
/// SubsetStats borrow their pres/posts/tree storage directly from the
/// region, and the model holds the region alive (Model::SetBacking) —
/// the last copy of the model unmaps the file. On big-endian hosts this
/// transparently degrades to the owned decode of the region's bytes.
Result<Model> ModelFromSnapshotRegion(std::shared_ptr<MmapRegion> region,
                                      SnapshotValidation validation);

}  // namespace unidetect
