#include "model_format/model_view.h"

#include <utility>

#include "model_format/model_snapshot.h"

namespace unidetect {

Result<ModelView> ModelView::Open(const std::string& path,
                                  SnapshotValidation validation) {
  auto model = LoadModelFromFile(path, validation);
  if (!model.ok()) return model.status();
  return ModelView(
      std::make_shared<const Model>(std::move(model).ValueOrDie()));
}

}  // namespace unidetect
