// The versioned binary model snapshot — the materialized artifact of the
// offline component (Section 2.2.3: learning crunches T once; online
// detection is a metric computation plus a lookup into this file).
//
// Wire layout (all integers little-endian, fixed width; DESIGN.md §10):
//
//   header          magic[8] = "UDSNAP\r\n"   (the \r\n catches text-mode
//                   u32 format_version         line-ending mangling, like
//                   u32 section_count          PNG's signature does)
//   section table   section_count entries of
//                   { u32 id, u32 crc32, u64 offset, u64 length }
//                   in strictly ascending id order
//   payloads        section bytes at the recorded offsets
//
// Each section's CRC-32 covers its payload bytes, so truncation and
// bit-level corruption are detected before any payload is decoded.
// Encoding is fully deterministic (sorted subsets, tokens, patterns):
// Save -> Load -> Save produces identical bytes.
//
// Compatibility policy: readers reject snapshots whose format_version is
// newer than kSnapshotVersion (the layout may have changed incompatibly)
// and skip unknown section ids within a known version (additive
// sections do not require a version bump). The legacy text model format
// remains readable through Model::Load's magic sniff.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "learn/model.h"
#include "util/result.h"

namespace unidetect {

inline constexpr std::string_view kSnapshotMagic{"UDSNAP\r\n", 8};
inline constexpr uint32_t kSnapshotVersion = 1;

/// \brief Section identifiers. Values are part of the wire format.
enum class SnapshotSection : uint32_t {
  kOptions = 1,       ///< ModelOptions, fixed-width fields
  kSubsets = 2,       ///< per-FeatureKey (theta1, theta2) observations
  kTokenIndex = 3,    ///< token prevalence index
  kPatternIndex = 4,  ///< pattern co-occurrence index
};

/// \brief True when `bytes` starts with the snapshot magic (the cheap
/// sniff Model::Load uses to pick binary vs legacy text decoding).
bool LooksLikeModelSnapshot(std::string_view bytes);

/// \brief Encodes a finalized model as one snapshot blob.
std::string EncodeModelSnapshot(const Model& model);

/// \brief Decodes a snapshot blob into a finalized, query-ready model.
///
/// Never returns a partial model: corrupt, truncated, or checksum-failed
/// input yields Status::Corruption; input written by a newer format
/// version yields Status::NotImplemented.
Result<Model> DecodeModelSnapshot(std::string_view bytes);

}  // namespace unidetect
