// The versioned binary model snapshot — the materialized artifact of the
// offline component (Section 2.2.3: learning crunches T once; online
// detection is a metric computation plus a lookup into this file).
//
// Wire layout (all integers little-endian, fixed width; DESIGN.md §10
// for the container, §12 for the v2 flat layout):
//
//   header          magic[8] = "UDSNAP\r\n"   (the \r\n catches text-mode
//                   u32 format_version         line-ending mangling, like
//                   u32 section_count          PNG's signature does)
//   section table   section_count entries of
//                   { u32 id, u32 crc32, u64 offset, u64 length }
//                   in strictly ascending id order
//   payloads        section bytes at the recorded offsets
//
// Each section's CRC-32 covers its payload bytes, so truncation and
// bit-level corruption are detected before any payload is decoded.
// Encoding is fully deterministic (sorted subsets, tokens, patterns):
// Save -> Load -> Save produces identical bytes.
//
// Version 2 (the default writer output, model_format/snapshot_v2.h) lays
// every payload out flat and 64-byte aligned so a reader can mmap the
// file and query it in place; version 1 (inline length-prefixed
// payloads) remains fully readable. Compatibility policy: readers reject
// snapshots whose format_version is newer than kSnapshotVersion (the
// layout may have changed incompatibly) and skip unknown section ids
// within a known version (additive sections do not require a version
// bump). The legacy text model format remains readable through
// Model::Load's magic sniff.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "learn/model.h"
#include "model_format/snapshot_validation.h"
#include "util/result.h"

namespace unidetect {

inline constexpr std::string_view kSnapshotMagic{"UDSNAP\r\n", 8};
inline constexpr uint32_t kSnapshotVersion = 2;

/// \brief Section identifiers. Values are part of the wire format.
/// Ids 1-4 are the v1 layout; 5-10 are the v2 flat layout (a v2 file
/// carries {1, 5..10}; id 1 is shared because the options payload is
/// version-independent). Ids 11-12 are the optional v2 half-precision
/// observation variant: a v2 file carries EITHER the f32 sections {7, 8}
/// or the f16 sections {11, 12}, never both — an additive encoding under
/// the section-skip compatibility rule, so no version bump. Id 13 marks
/// a *delta* artifact (model_format/delta_snapshot.h): a small v2 model
/// chained to its base snapshot by content hash. Old readers skip it
/// (after CRC-checking it) and decode the delta as a plain model —
/// intentional, since a delta IS a model over the incremental shards.
enum class SnapshotSection : uint32_t {
  kOptions = 1,        ///< ModelOptions, fixed-width fields (v1 and v2)
  kSubsets = 2,        ///< v1: inline per-key (theta1, theta2) lists
  kTokenIndex = 3,     ///< v1: token prevalence index
  kPatternIndex = 4,   ///< v1: pattern co-occurrence index
  kStringPool = 5,     ///< v2: interned bytes of all tokens/patterns
  kSubsetIndex = 6,    ///< v2: key-sorted fixed-width subset directory
  kObservations = 7,   ///< v2: contiguous f32 pres/posts arrays
  kTreeLevels = 8,     ///< v2: flat per-subset merge-sort-tree levels
  kTokenIndex2 = 9,    ///< v2: pool-ref token entries
  kPatternIndex2 = 10, ///< v2: pool-ref pattern + pair entries
  kObservationsF16 = 11, ///< v2: binary16 pres/posts (replaces id 7)
  kTreeLevelsF16 = 12,   ///< v2: binary16 tree levels (replaces id 8)
  kDeltaManifest = 13,   ///< v2: delta chain manifest (delta_snapshot.h)
};

/// \brief True when `bytes` starts with the snapshot magic (the cheap
/// sniff Model::Load uses to pick binary vs legacy text decoding).
bool LooksLikeModelSnapshot(std::string_view bytes);

/// \brief The snapshot's format_version field, or 0 when `bytes` is not
/// a snapshot (or too short to carry the header).
uint32_t SnapshotVersionOf(std::string_view bytes);

/// \brief Encodes a finalized model as one snapshot blob in the current
/// default format (v2 flat layout).
std::string EncodeModelSnapshot(const Model& model);

/// \brief Encodes the legacy v1 layout. Kept as a writer so format-
/// migration tests, tools/snapshot_convert, and the v1-vs-v2 benchmarks
/// can produce v1 artifacts on demand.
std::string EncodeModelSnapshotV1(const Model& model);

/// \brief Decodes a snapshot blob (either version, dispatched on the
/// header) into a finalized, query-ready model. Always copies into owned
/// storage — in-memory buffers carry no alignment guarantee; the
/// zero-copy path is LoadModelFromFile / ModelView over a mapped file.
///
/// Never returns a partial model: corrupt, truncated, or checksum-failed
/// input yields Status::Corruption; input written by a newer format
/// version yields Status::NotImplemented.
Result<Model> DecodeModelSnapshot(
    std::string_view bytes,
    SnapshotValidation validation = SnapshotValidation::kFull);

/// \brief Loads a model file of any supported format: v2 snapshots are
/// mapped and decoded zero-copy (on little-endian hosts), v1 snapshots
/// and legacy text models are decoded into owned storage via the magic
/// sniff. Backs Model::Load and DetectionService::Reload.
Result<Model> LoadModelFromFile(
    const std::string& path,
    SnapshotValidation validation = SnapshotValidation::kFull);

}  // namespace unidetect
