// ModelView: the serving-side read handle over a model artifact.
//
// Open() maps the file and decodes it by format — UDSNAP v2 zero-copy
// (the common case: SubsetStats spans borrow straight from the mapping),
// UDSNAP v1 or legacy text into owned storage. The view owns the
// decoded Model behind a shared_ptr; DetectionService::Reload swaps that
// pointer into its engine, and the mapped region (if any) lives exactly
// as long as the last Model copy that borrows from it — the munmap
// happens when the final engine generation retires, which is what makes
// Reload-under-DetectBatch safe and tsan-visible.

#pragma once

#include <memory>
#include <string>

#include "learn/model.h"
#include "model_format/snapshot_validation.h"
#include "util/result.h"

namespace unidetect {

/// \brief An immutable, shareable view of a loaded model artifact.
class ModelView {
 public:
  /// \brief Opens `path` (any supported format). The default validation
  /// defers bulk-payload checksums, making open cost O(index) for v2
  /// snapshots — pass kFull for tools and offline verification.
  static Result<ModelView> Open(
      const std::string& path,
      SnapshotValidation validation = SnapshotValidation::kDeferPayload);

  const Model& model() const { return *model_; }
  std::shared_ptr<const Model> shared_model() const { return model_; }

  /// \brief True when the model's observation storage borrows from a
  /// mapped snapshot rather than owned heap memory.
  bool zero_copy() const { return model_->mapped_bytes() > 0; }

  /// \brief Bytes of file-backed (page-cache shared) storage; 0 when the
  /// model is fully owned.
  uint64_t mapped_bytes() const { return model_->mapped_bytes(); }

  /// \brief Approximate private heap bytes of the model.
  uint64_t resident_bytes() const { return model_->ApproxResidentBytes(); }

 private:
  explicit ModelView(std::shared_ptr<const Model> model)
      : model_(std::move(model)) {}

  std::shared_ptr<const Model> model_;
};

}  // namespace unidetect
