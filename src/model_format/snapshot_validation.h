// How much of a model snapshot the decoder verifies before handing the
// model to queries. Split out so serving code can name the mode without
// pulling in the full codec headers.

#pragma once

namespace unidetect {

/// \brief Snapshot decode verification level.
enum class SnapshotValidation {
  /// Verify everything: every section CRC plus the per-subset sorted-
  /// order invariant. The default for Model::Load, tools, and tests —
  /// any flipped bit anywhere in the file surfaces as Corruption.
  kFull = 0,
  /// Verify structure only: header, section table, alignment, canonical
  /// packing, and the CRCs of the metadata sections (options, pool,
  /// subset index, token index, pattern index) — but not the bulk
  /// observation / tree payloads, which are never copied on the v2
  /// zero-copy path anyway. Decode cost is O(index), independent of
  /// observation count; this is what DetectionService::Reload uses to
  /// make reload latency instant on mapped snapshots.
  kDeferPayload = 1,
};

}  // namespace unidetect
