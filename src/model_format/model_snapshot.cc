#include "model_format/model_snapshot.h"

#include <bit>
#include <memory>
#include <vector>

#include "model_format/codec_internal.h"
#include "model_format/snapshot_v2.h"
#include "util/binary_io.h"
#include "util/bounded_reader.h"
#include "util/checked.h"
#include "util/logging.h"
#include "util/mmap_file.h"
#include "util/string_util.h"

namespace unidetect {

namespace snapshot_internal {

std::string EncodeOptionsPayload(const ModelOptions& options) {
  std::string out;
  AppendU8(&out, options.featurize.enabled ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(options.smoothing));
  AppendU32(&out, static_cast<uint32_t>(options.denominator));
  AppendU64(&out, options.epsilon.min_rows);
  AppendF64(&out, options.epsilon.fraction);
  AppendF64(&out, options.pseudocount);
  AppendU64(&out, options.min_support);
  AppendF64(&out, options.point_grid);
  AppendU64(&out, options.min_column_rows);
  AppendU64(&out, options.mpd.distance_cap);
  AppendU64(&out, options.mpd.max_values);
  return out;
}

Result<ModelOptions> DecodeOptionsPayload(std::string_view payload) {
  BinaryReader reader(payload);
  ModelOptions options;
  uint8_t featurize = 0;
  uint32_t smoothing = 0;
  uint32_t denominator = 0;
  uint64_t eps_min_rows = 0;
  uint64_t min_support = 0;
  uint64_t min_column_rows = 0;
  uint64_t distance_cap = 0;
  uint64_t max_values = 0;
  if (!reader.ReadU8(&featurize) || !reader.ReadU32(&smoothing) ||
      !reader.ReadU32(&denominator) || !reader.ReadU64(&eps_min_rows) ||
      !reader.ReadF64(&options.epsilon.fraction) ||
      !reader.ReadF64(&options.pseudocount) || !reader.ReadU64(&min_support) ||
      !reader.ReadF64(&options.point_grid) ||
      !reader.ReadU64(&min_column_rows) || !reader.ReadU64(&distance_cap) ||
      !reader.ReadU64(&max_values)) {
    return Status::Corruption("Model snapshot: options section truncated");
  }
  if (!reader.empty()) {
    return Status::Corruption(
        "Model snapshot: options section has trailing bytes");
  }
  if (smoothing > 1 || denominator > 1) {
    return Status::Corruption(
        "Model snapshot: options section enum out of range");
  }
  options.featurize.enabled = featurize != 0;
  options.smoothing = static_cast<SmoothingMode>(smoothing);
  options.denominator = static_cast<DenominatorMode>(denominator);
  // The u64 wire fields narrow to size_t checked: on 32-bit hosts a
  // crafted value must not silently truncate into a different config.
  UNIDETECT_ASSIGN_OR_RETURN(
      options.epsilon.min_rows,
      CheckedCast<size_t>(eps_min_rows, "options epsilon min_rows"));
  options.min_support = min_support;
  UNIDETECT_ASSIGN_OR_RETURN(
      options.min_column_rows,
      CheckedCast<size_t>(min_column_rows, "options min_column_rows"));
  UNIDETECT_ASSIGN_OR_RETURN(
      options.mpd.distance_cap,
      CheckedCast<size_t>(distance_cap, "options mpd distance_cap"));
  UNIDETECT_ASSIGN_OR_RETURN(
      options.mpd.max_values,
      CheckedCast<size_t>(max_values, "options mpd max_values"));
  return options;
}

std::string SectionName(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case SnapshotSection::kOptions:
      return "options";
    case SnapshotSection::kSubsets:
      return "subsets";
    case SnapshotSection::kTokenIndex:
      return "token index";
    case SnapshotSection::kPatternIndex:
      return "pattern index";
    case SnapshotSection::kStringPool:
      return "string pool";
    case SnapshotSection::kSubsetIndex:
      return "subset index";
    case SnapshotSection::kObservations:
      return "observations";
    case SnapshotSection::kTreeLevels:
      return "tree levels";
    case SnapshotSection::kTokenIndex2:
      return "token index";
    case SnapshotSection::kPatternIndex2:
      return "pattern index";
    case SnapshotSection::kObservationsF16:
      return "f16 observations";
    case SnapshotSection::kTreeLevelsF16:
      return "f16 tree levels";
    case SnapshotSection::kDeltaManifest:
      return "delta manifest";
  }
  return StrCat("unknown(", id, ")");
}

}  // namespace snapshot_internal

namespace {

using snapshot_internal::DecodeOptionsPayload;
using snapshot_internal::EncodeOptionsPayload;
using snapshot_internal::kHeaderBytes;
using snapshot_internal::kTableEntryBytes;
using snapshot_internal::SectionName;

std::string EncodeSubsetsPayload(const Model& model) {
  std::string out;
  AppendU64(&out, model.num_subsets());
  model.ForEachSubsetSorted([&](FeatureKey key, const SubsetStats& stats) {
    AppendU64(&out, key.packed);
    AppendU64(&out, stats.size());
    // PreAt/PostAt dequantize when the stats are half-precision: v1 has
    // no f16 encoding, so a downgrade widens (exactly) to f32.
    for (size_t i = 0; i < stats.size(); ++i) {
      AppendF32(&out, stats.PreAt(i));
      AppendF32(&out, stats.PostAt(i));
    }
  });
  return out;
}

Status DecodeSubsetsPayload(std::string_view payload, Model* model) {
  BinaryReader reader(payload);
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return Status::Corruption("Model snapshot: subsets section truncated");
  }
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    uint64_t n = 0;
    if (!reader.ReadU64(&key) || !reader.ReadU64(&n)) {
      return Status::Corruption("Model snapshot: subsets section truncated");
    }
    if (i > 0 && key <= prev_key) {
      return Status::Corruption(
          "Model snapshot: subset keys not strictly ascending");
    }
    prev_key = key;
    if (n > reader.remaining() / 8) {
      return Status::Corruption(
          "Model snapshot: subset observation list truncated");
    }
    UNIDETECT_ASSIGN_OR_RETURN(
        const size_t n_values,
        CheckedCast<size_t>(n, "subset observation count"));
    std::vector<float> pres;
    std::vector<float> posts;
    pres.reserve(n_values);
    posts.reserve(n_values);
    for (uint64_t j = 0; j < n; ++j) {
      float pre = 0;
      float post = 0;
      reader.ReadF32(&pre);  // size checked above; cannot fail
      reader.ReadF32(&post);
      pres.push_back(pre);
      posts.push_back(post);
    }
    auto stats = SubsetStats::FromSortedArrays(std::move(pres),
                                               std::move(posts));
    if (!stats.ok()) return stats.status();
    model->InsertSubset(FeatureKey{key}, std::move(stats).ValueOrDie());
  }
  if (!reader.empty()) {
    return Status::Corruption(
        "Model snapshot: subsets section has trailing bytes");
  }
  return Status::OK();
}

Result<Model> DecodeModelSnapshotV1(std::string_view bytes) {
  BinaryReader reader(bytes);
  std::string_view magic;
  reader.ReadBytes(kSnapshotMagic.size(), &magic);  // verified by caller
  uint32_t version = 0;
  uint32_t section_count = 0;
  reader.ReadU32(&version);
  if (!reader.ReadU32(&section_count)) {
    return Status::Corruption("Model snapshot: truncated header");
  }

  struct Entry {
    uint32_t id = 0;
    std::string_view payload;
  };
  // Table size validated against the file BEFORE the reserve: a crafted
  // section_count must not drive a huge allocation (std::bad_alloc is a
  // crash, not a typed Corruption).
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t table_bytes,
      CheckedMul<uint64_t>(section_count, snapshot_internal::kTableEntryBytes,
                           "snapshot section table"));
  if (table_bytes > reader.remaining()) {
    return Status::Corruption("Model snapshot: truncated section table");
  }
  std::vector<Entry> entries;
  entries.reserve(section_count);
  const BoundedReader file(bytes, "Model snapshot");
  uint32_t prev_id = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint32_t crc = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    if (!reader.ReadU32(&id) || !reader.ReadU32(&crc) ||
        !reader.ReadU64(&offset) || !reader.ReadU64(&length)) {
      return Status::Corruption("Model snapshot: truncated section table");
    }
    if (id <= prev_id) {
      return Status::Corruption(
          "Model snapshot: section ids not strictly ascending");
    }
    prev_id = id;
    if (length == 0) {
      return Status::Corruption(
          StrCat("Model snapshot: zero-length ", SectionName(id), " section"));
    }
    // offset + length is overflow-checked before the bounds compare so a
    // crafted pair of huge u64s cannot wrap into an in-bounds range.
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t section_end,
        CheckedAdd<uint64_t>(offset, length, "snapshot section extent"));
    if (section_end > bytes.size()) {
      return Status::Corruption(
          StrCat("Model snapshot: ", SectionName(id),
                 " section extends past end of file (truncated?)"));
    }
    UNIDETECT_ASSIGN_OR_RETURN(const std::string_view payload,
                               file.SubSpan(offset, length));
    if (Crc32(payload) != crc) {
      return Status::Corruption(StrCat("Model snapshot: checksum mismatch in ",
                                       SectionName(id), " section"));
    }
    entries.push_back(Entry{id, payload});
  }

  auto find_section = [&](SnapshotSection id) -> const Entry* {
    for (const Entry& entry : entries) {
      if (entry.id == static_cast<uint32_t>(id)) return &entry;
    }
    return nullptr;
  };
  for (SnapshotSection required :
       {SnapshotSection::kOptions, SnapshotSection::kSubsets,
        SnapshotSection::kTokenIndex, SnapshotSection::kPatternIndex}) {
    if (find_section(required) == nullptr) {
      return Status::Corruption(
          StrCat("Model snapshot: missing ",
                 SectionName(static_cast<uint32_t>(required)), " section"));
    }
  }
  // Unknown section ids are skipped: additive sections are readable by
  // older readers; incompatible layout changes bump kSnapshotVersion.

  auto options = DecodeOptionsPayload(find_section(SnapshotSection::kOptions)
                                          ->payload);
  if (!options.ok()) return options.status();
  Model model(std::move(options).ValueOrDie());

  UNIDETECT_RETURN_NOT_OK(DecodeSubsetsPayload(
      find_section(SnapshotSection::kSubsets)->payload, &model));

  {
    BinaryReader section(find_section(SnapshotSection::kTokenIndex)->payload);
    auto index = TokenIndex::FromBinary(&section);
    if (!index.ok()) return index.status();
    if (!section.empty()) {
      return Status::Corruption(
          "Model snapshot: token index section has trailing bytes");
    }
    *model.mutable_token_index() = std::move(index).ValueOrDie();
  }
  {
    BinaryReader section(
        find_section(SnapshotSection::kPatternIndex)->payload);
    auto index = PatternIndex::FromBinary(&section);
    if (!index.ok()) return index.status();
    if (!section.empty()) {
      return Status::Corruption(
          "Model snapshot: pattern index section has trailing bytes");
    }
    *model.mutable_pattern_index() = std::move(index).ValueOrDie();
  }

  model.Finalize();
  return model;
}

}  // namespace

bool LooksLikeModelSnapshot(std::string_view bytes) {
  return StartsWith(bytes, kSnapshotMagic);
}

uint32_t SnapshotVersionOf(std::string_view bytes) {
  if (!LooksLikeModelSnapshot(bytes) || bytes.size() < kHeaderBytes - 4) {
    return 0;
  }
  BinaryReader reader(bytes.substr(kSnapshotMagic.size()));
  uint32_t version = 0;
  reader.ReadU32(&version);
  return version;
}

std::string EncodeModelSnapshot(const Model& model) {
  return EncodeModelSnapshotV2(model);
}

std::string EncodeModelSnapshotV1(const Model& model) {
  UNIDETECT_CHECK(model.finalized());
  struct Section {
    SnapshotSection id;
    std::string payload;
  };
  std::vector<Section> sections;
  sections.push_back({SnapshotSection::kOptions,
                      EncodeOptionsPayload(model.options())});
  sections.push_back({SnapshotSection::kSubsets, EncodeSubsetsPayload(model)});
  {
    std::string payload;
    model.token_index().AppendBinary(&payload);
    sections.push_back({SnapshotSection::kTokenIndex, std::move(payload)});
  }
  {
    std::string payload;
    model.pattern_index().AppendBinary(&payload);
    sections.push_back({SnapshotSection::kPatternIndex, std::move(payload)});
  }

  std::string out;
  out.append(kSnapshotMagic);
  AppendU32(&out, 1);  // the v1 layout always announces version 1
  AppendU32(&out, static_cast<uint32_t>(sections.size()));
  uint64_t offset = kHeaderBytes + sections.size() * kTableEntryBytes;
  for (const Section& section : sections) {
    AppendU32(&out, static_cast<uint32_t>(section.id));
    AppendU32(&out, Crc32(section.payload));
    AppendU64(&out, offset);
    AppendU64(&out, section.payload.size());
    offset += section.payload.size();
  }
  for (const Section& section : sections) out.append(section.payload);
  return out;
}

Result<Model> DecodeModelSnapshot(std::string_view bytes,
                                  SnapshotValidation validation) {
  BinaryReader reader(bytes);
  std::string_view magic;
  if (!reader.ReadBytes(kSnapshotMagic.size(), &magic) ||
      magic != kSnapshotMagic) {
    return Status::Corruption("Model snapshot: bad magic");
  }
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) {
    return Status::Corruption("Model snapshot: truncated header");
  }
  if (version == 0) {
    return Status::Corruption("Model snapshot: format version 0 is invalid");
  }
  if (version > kSnapshotVersion) {
    return Status::NotImplemented(
        StrCat("Model snapshot: format version ", version,
               " is newer than the supported version ", kSnapshotVersion,
               "; upgrade the reader"));
  }
  if (version >= 2) return DecodeModelSnapshotV2(bytes, validation);
  return DecodeModelSnapshotV1(bytes);
}

Result<Model> LoadModelFromFile(const std::string& path,
                                SnapshotValidation validation) {
  auto region_or = MmapRegion::Map(path);
  if (!region_or.ok()) return region_or.status();
  MmapRegion region = std::move(region_or).ValueOrDie();
  const std::string_view bytes = region.bytes();
  if (LooksLikeModelSnapshot(bytes)) {
    if (SnapshotVersionOf(bytes) >= 2 &&
        std::endian::native == std::endian::little) {
      return ModelFromSnapshotRegion(
          std::make_shared<MmapRegion>(std::move(region)), validation);
    }
    // v1 (or a big-endian host): owned decode; the mapping doubles as the
    // read buffer and is dropped on return.
    return DecodeModelSnapshot(bytes, validation);
  }
  // Legacy text sniff: the pre-snapshot format opened with its own magic
  // line and stays readable so existing model files keep working.
  if (StartsWith(bytes, kLegacyModelMagic)) return Model::Deserialize(bytes);
  return Status::Corruption("Model: " + path +
                            " is neither a binary snapshot nor a legacy "
                            "text model (bad magic)");
}

}  // namespace unidetect
