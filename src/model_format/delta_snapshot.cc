#include "model_format/delta_snapshot.h"

#include <fstream>

#include "model_format/codec_internal.h"
#include "model_format/model_snapshot.h"
#include "util/binary_io.h"
#include "util/bounded_reader.h"
#include "util/checked.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

using snapshot_internal::kHeaderBytes;
using snapshot_internal::kTableEntryBytes;

constexpr uint32_t kManifestVersion = 1;
constexpr size_t kManifestPayloadBytes = 4 + 4 + 8 + 8 + 8;

// Parses just the container framing: magic, version, and the byte count
// of header + section table (validated against the buffer). Every other
// identity operation works over that prefix.
Status ParseContainerPrefix(BinaryReader* reader, uint32_t* section_count,
                            uint64_t* prefix_bytes) {
  std::string_view magic;
  if (!reader->ReadBytes(kSnapshotMagic.size(), &magic) ||
      magic != kSnapshotMagic) {
    return Status::Corruption("Snapshot identity: not a UDSNAP container");
  }
  uint32_t version = 0;
  if (!reader->ReadU32(&version) || !reader->ReadU32(section_count)) {
    return Status::Corruption("Snapshot identity: truncated header");
  }
  if (version > kSnapshotVersion) {
    return Status::NotImplemented(
        StrCat("Snapshot identity: format version ", version,
               " is newer than the supported version ", kSnapshotVersion));
  }
  UNIDETECT_ASSIGN_OR_RETURN(
      const uint64_t table_bytes,
      CheckedMul<uint64_t>(*section_count, kTableEntryBytes,
                           "snapshot identity section table"));
  if (table_bytes > reader->remaining()) {
    return Status::Corruption("Snapshot identity: truncated section table");
  }
  UNIDETECT_ASSIGN_OR_RETURN(
      *prefix_bytes,
      CheckedAdd<uint64_t>(kHeaderBytes, table_bytes,
                           "snapshot identity extent"));
  return Status::OK();
}

}  // namespace

std::string EncodeDeltaManifestPayload(const DeltaManifest& manifest) {
  std::string out;
  AppendU32(&out, kManifestVersion);
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, manifest.base_id);
  AppendU64(&out, manifest.parent_id);
  AppendU64(&out, manifest.depth);
  return out;
}

Result<DeltaManifest> DecodeDeltaManifestPayload(std::string_view payload) {
  BinaryReader reader(payload);
  uint32_t version = 0;
  uint32_t reserved = 0;
  DeltaManifest manifest;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&reserved) ||
      !reader.ReadU64(&manifest.base_id) ||
      !reader.ReadU64(&manifest.parent_id) ||
      !reader.ReadU64(&manifest.depth)) {
    return Status::Corruption("Delta manifest: truncated payload");
  }
  if (!reader.empty()) {
    return Status::Corruption("Delta manifest: trailing bytes");
  }
  if (version > kManifestVersion) {
    return Status::NotImplemented(
        StrCat("Delta manifest: version ", version,
               " is newer than the supported version ", kManifestVersion));
  }
  if (version != kManifestVersion) {
    return Status::Corruption("Delta manifest: bad version");
  }
  if (reserved != 0) {
    return Status::Corruption("Delta manifest: nonzero reserved field");
  }
  if (manifest.depth == 0 || manifest.depth > kMaxDeltaDepth) {
    return Status::Corruption(
        StrCat("Delta manifest: depth ", manifest.depth,
               " outside [1, ", kMaxDeltaDepth, "]"));
  }
  if (manifest.depth == 1 && manifest.parent_id != manifest.base_id) {
    return Status::Corruption(
        "Delta manifest: first delta's parent must be its base");
  }
  return manifest;
}

Result<uint64_t> SnapshotArtifactId(std::string_view bytes) {
  BinaryReader reader(bytes);
  uint32_t section_count = 0;
  uint64_t prefix_bytes = 0;
  UNIDETECT_RETURN_NOT_OK(
      ParseContainerPrefix(&reader, &section_count, &prefix_bytes));
  // FNV-1a-64 over header + section table. The table rows carry every
  // section's CRC-32, so this commits to all payload content at
  // O(#sections) cost.
  uint64_t hash = 14695981039346656037ULL;
  for (uint64_t i = 0; i < prefix_bytes; ++i) {
    hash ^= static_cast<uint8_t>(bytes[static_cast<size_t>(i)]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Result<std::optional<DeltaManifest>> FindDeltaManifest(
    std::string_view bytes) {
  BinaryReader reader(bytes);
  uint32_t section_count = 0;
  uint64_t prefix_bytes = 0;
  UNIDETECT_RETURN_NOT_OK(
      ParseContainerPrefix(&reader, &section_count, &prefix_bytes));
  const BoundedReader file(bytes, "Delta manifest");
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint32_t crc = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    if (!reader.ReadU32(&id) || !reader.ReadU32(&crc) ||
        !reader.ReadU64(&offset) || !reader.ReadU64(&length)) {
      return Status::Corruption(
          "Delta manifest: truncated section table");
    }
    if (id != static_cast<uint32_t>(SnapshotSection::kDeltaManifest)) {
      continue;
    }
    if (length != kManifestPayloadBytes) {
      return Status::Corruption(
          StrCat("Delta manifest: section length ", length, " (want ",
                 kManifestPayloadBytes, ")"));
    }
    // SubSpan overflow-checks offset + length against the buffer, so a
    // hostile table row cannot walk out of bounds here.
    UNIDETECT_ASSIGN_OR_RETURN(const std::string_view payload,
                               file.SubSpan(offset, length));
    // Always checksummed — the payload is 32 bytes, and the chain fields
    // steer which layers serving stacks, so they are never trusted raw.
    if (Crc32(payload) != crc) {
      return Status::Corruption(
          "Delta manifest: checksum mismatch in manifest section");
    }
    UNIDETECT_ASSIGN_OR_RETURN(const DeltaManifest manifest,
                               DecodeDeltaManifestPayload(payload));
    return std::optional<DeltaManifest>(manifest);
  }
  return std::optional<DeltaManifest>();
}

Result<SnapshotIdentity> ReadSnapshotIdentity(const std::string& path) {
  // Bounded I/O: header + section table + (if present) the 32-byte
  // manifest payload. Reading the whole artifact here would put an
  // O(file size) pass on the Reload/ApplyDelta hot path and forfeit the
  // mmap reload floor.
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::IOError(
        StrCat("Snapshot identity: cannot open ", path));
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size < kHeaderBytes) {
    return Status::Corruption("Snapshot identity: not a UDSNAP container");
  }
  std::string header(kHeaderBytes, '\0');
  if (!in.read(header.data(), static_cast<std::streamsize>(header.size()))) {
    return Status::IOError(StrCat("Snapshot identity: short read on ", path));
  }
  BinaryReader reader(header);
  uint32_t section_count = 0;
  uint64_t prefix_bytes = 0;
  {
    // ParseContainerPrefix validates the table extent against the
    // buffer; with only the header in hand, check against the real file
    // size instead.
    std::string_view magic;
    if (!reader.ReadBytes(kSnapshotMagic.size(), &magic) ||
        magic != kSnapshotMagic) {
      return Status::Corruption("Snapshot identity: not a UDSNAP container");
    }
    uint32_t version = 0;
    if (!reader.ReadU32(&version) || !reader.ReadU32(&section_count)) {
      return Status::Corruption("Snapshot identity: truncated header");
    }
    if (version > kSnapshotVersion) {
      return Status::NotImplemented(
          StrCat("Snapshot identity: format version ", version,
                 " is newer than the supported version ", kSnapshotVersion));
    }
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t table_bytes,
        CheckedMul<uint64_t>(section_count, kTableEntryBytes,
                             "snapshot identity section table"));
    UNIDETECT_ASSIGN_OR_RETURN(
        prefix_bytes, CheckedAdd<uint64_t>(kHeaderBytes, table_bytes,
                                           "snapshot identity extent"));
    if (prefix_bytes > file_size) {
      return Status::Corruption("Snapshot identity: truncated section table");
    }
  }
  std::string prefix = std::move(header);
  prefix.resize(static_cast<size_t>(prefix_bytes));
  if (!in.read(prefix.data() + kHeaderBytes,
               static_cast<std::streamsize>(prefix_bytes - kHeaderBytes))) {
    return Status::IOError(StrCat("Snapshot identity: short read on ", path));
  }

  SnapshotIdentity identity;
  UNIDETECT_ASSIGN_OR_RETURN(identity.artifact_id, SnapshotArtifactId(prefix));

  // Scan the table for the manifest section and fetch just its payload.
  BinaryReader table(std::string_view(prefix).substr(kHeaderBytes));
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    uint32_t crc = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    if (!table.ReadU32(&id) || !table.ReadU32(&crc) ||
        !table.ReadU64(&offset) || !table.ReadU64(&length)) {
      return Status::Corruption("Delta manifest: truncated section table");
    }
    if (id != static_cast<uint32_t>(SnapshotSection::kDeltaManifest)) {
      continue;
    }
    if (length != kManifestPayloadBytes) {
      return Status::Corruption(
          StrCat("Delta manifest: section length ", length, " (want ",
                 kManifestPayloadBytes, ")"));
    }
    UNIDETECT_ASSIGN_OR_RETURN(
        const uint64_t section_end,
        CheckedAdd<uint64_t>(offset, length, "delta manifest extent"));
    if (section_end > file_size) {
      return Status::Corruption(
          "Delta manifest: section extends past end of file");
    }
    std::string payload(kManifestPayloadBytes, '\0');
    in.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
    if (!in.read(payload.data(),
                 static_cast<std::streamsize>(payload.size()))) {
      return Status::IOError(
          StrCat("Snapshot identity: short read on ", path));
    }
    // Always checksummed — the chain fields steer which layers serving
    // stacks, so they are never trusted raw.
    if (Crc32(payload) != crc) {
      return Status::Corruption(
          "Delta manifest: checksum mismatch in manifest section");
    }
    UNIDETECT_ASSIGN_OR_RETURN(const DeltaManifest manifest,
                               DecodeDeltaManifestPayload(payload));
    identity.manifest = manifest;
    break;
  }
  return identity;
}

}  // namespace unidetect
