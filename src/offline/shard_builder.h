// Per-shard partial-model builders (DESIGN.md section 11).
//
// Each builder streams one shard's tables (one table in memory at a
// time) and produces a *partial* Model destined for a UDSNAP snapshot:
//
//   stage 1  BuildIndexPartial        only the token + pattern indexes
//   stage 2  BuildObservationPartial  only the metric observations,
//                                     featurized against the FULL merged
//                                     index of every stage-1 partial
//
// Partials are ordinary models as far as persistence is concerned —
// Model::Save/Load and the snapshot CRCs work unchanged — and
// Model::Merge folds any set of them back together in any order.

#pragma once

#include "learn/model.h"
#include "learn/trainer.h"
#include "offline/shard_plan.h"
#include "util/result.h"

namespace unidetect {

/// \brief Streams `shard` and returns a partial model carrying only its
/// token prevalence and pattern co-occurrence indexes (no observations).
Result<Model> BuildIndexPartial(const Shard& shard,
                                const ModelOptions& options);

/// \brief Streams `shard` and returns a partial model carrying only its
/// metric observations. `merged_index` must be the token index merged
/// over every shard of the plan (featurization consults full-corpus
/// prevalence; a shard-local index would shift feature keys).
Result<Model> BuildObservationPartial(const Shard& shard,
                                      const TokenIndex& merged_index,
                                      const TrainerOptions& trainer);

}  // namespace unidetect
