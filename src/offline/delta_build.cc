#include "offline/delta_build.h"

#include <cstdio>
#include <utility>

#include "corpus/corpus_io.h"
#include "learn/trainer.h"
#include "model_format/model_view.h"
#include "model_format/snapshot_v2.h"
#include "util/binary_io.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

/// \brief Resolves the manifest the new delta must carry from the base
/// and (optionally) parent artifacts on disk.
Result<DeltaManifest> ResolveChainLink(const DeltaBuildSpec& spec,
                                       uint64_t* base_id_out) {
  UNIDETECT_ASSIGN_OR_RETURN(const SnapshotIdentity base,
                             ReadSnapshotIdentity(spec.base_path));
  if (base.manifest.has_value()) {
    return Status::InvalidArgument(
        StrCat("delta build: ", spec.base_path,
               " is itself a delta artifact; a chain's base must be a "
               "plain snapshot"));
  }
  *base_id_out = base.artifact_id;
  DeltaManifest manifest;
  manifest.base_id = base.artifact_id;
  if (spec.parent_path.empty()) {
    manifest.parent_id = base.artifact_id;
    manifest.depth = 1;
    return manifest;
  }
  UNIDETECT_ASSIGN_OR_RETURN(const SnapshotIdentity parent,
                             ReadSnapshotIdentity(spec.parent_path));
  if (!parent.manifest.has_value()) {
    // Naming a base as the parent is fine — but only this chain's base.
    if (parent.artifact_id != base.artifact_id) {
      return Status::InvalidArgument(
          StrCat("delta build: parent ", spec.parent_path,
                 " is a base snapshot, but not the base at ",
                 spec.base_path));
    }
    manifest.parent_id = base.artifact_id;
    manifest.depth = 1;
    return manifest;
  }
  if (parent.manifest->base_id != base.artifact_id) {
    return Status::InvalidArgument(
        StrCat("delta build: parent ", spec.parent_path,
               " chains to base ", parent.manifest->base_id,
               ", not the base at ", spec.base_path, " (",
               base.artifact_id, ")"));
  }
  manifest.parent_id = parent.artifact_id;
  manifest.depth = parent.manifest->depth + 1;
  if (manifest.depth > kMaxDeltaDepth) {
    return Status::InvalidArgument(
        StrCat("delta build: chain depth ", manifest.depth,
               " exceeds the maximum of ", kMaxDeltaDepth,
               "; compact the chain first"));
  }
  return manifest;
}

}  // namespace

Result<DeltaBuildReport> BuildDeltaSnapshot(const DeltaBuildSpec& spec) {
  if (spec.input_dirs.empty()) {
    return Status::InvalidArgument("delta build: no input directories");
  }
  if (spec.out_path.empty()) {
    return Status::InvalidArgument("delta build: no output path");
  }
  DeltaBuildReport report;
  uint64_t base_id = 0;
  UNIDETECT_ASSIGN_OR_RETURN(report.manifest,
                             ResolveChainLink(spec, &base_id));

  // The base's learning options define what every layered count means,
  // so the delta trains under them verbatim (ApplyDelta byte-compares
  // the options payloads before stacking). Deferred validation keeps
  // this open O(index) — only the options section is consulted.
  UNIDETECT_ASSIGN_OR_RETURN(const ModelView base_view,
                             ModelView::Open(spec.base_path));
  TrainerOptions trainer_options;
  trainer_options.model = base_view.model().options();
  trainer_options.num_threads = spec.num_threads;
  trainer_options.max_fd_pairs_per_table = spec.max_fd_pairs_per_table;

  Corpus corpus;
  for (const std::string& dir : spec.input_dirs) {
    UNIDETECT_ASSIGN_OR_RETURN(Corpus part,
                               LoadCorpusFromDirectory(dir, spec.num_threads));
    for (Table& table : part.tables) {
      corpus.tables.push_back(std::move(table));
    }
  }
  report.tables = corpus.tables.size();

  const Model model = Trainer(trainer_options).Train(corpus);
  const std::string encoded = EncodeModelSnapshotV2(
      model, ObservationEncoding::kPreserve, &report.manifest);
  UNIDETECT_ASSIGN_OR_RETURN(report.artifact_id, SnapshotArtifactId(encoded));
  report.encoded_bytes = encoded.size();

  // Write-then-rename: a crash mid-write never leaves a torn artifact
  // where ApplyDelta might find it.
  const std::string tmp_path = spec.out_path + ".tmp";
  UNIDETECT_RETURN_NOT_OK(WriteStringToFile(tmp_path, encoded));
  if (std::rename(tmp_path.c_str(), spec.out_path.c_str()) != 0) {
    return Status::IOError(
        StrCat("delta build: rename to ", spec.out_path, " failed"));
  }
  return report;
}

}  // namespace unidetect
