#include "offline/offline_build.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "model_format/model_snapshot.h"
#include "offline/shard_builder.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace unidetect {
namespace {

/// \brief Reads and decodes one journaled partial snapshot.
Result<Model> LoadPartial(const std::string& path) {
  UNIDETECT_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DecodeModelSnapshot(bytes);
}

/// \brief True when (stage, shard) is journaled and its snapshot file
/// re-hashes to the journaled CRC. `crc_out` may be null.
bool PartialVerifies(const BuildJournal& journal, const std::string& build_dir,
                     BuildStage stage, size_t shard) {
  uint32_t want = 0;
  if (!journal.Lookup(stage, shard, &want)) return false;
  auto bytes = ReadFileToString(OfflinePartialPath(build_dir, stage, shard));
  return bytes.ok() && Crc32(*bytes) == want;
}

/// \brief Shared state of one stage's worker crew. Workers pull the next
/// pending shard under `mu` (work-stealing keeps threads busy on skewed
/// shards); nothing about the *output* depends on which worker builds
/// which shard, so any thread count yields identical partials.
struct StageState {
  Mutex mu;
  size_t cursor GUARDED_BY(mu) = 0;  ///< next unclaimed entry of `pending`
  bool stopped GUARDED_BY(mu) = false;  ///< keep_going asked us to stop
  size_t built GUARDED_BY(mu) = 0;
  Status error GUARDED_BY(mu);
};

/// \brief Builds every pending shard of one stage. `merged_index` is null
/// for stage 1 and the full merged token index for stage 2. Sets
/// `*stopped_out` (without error) when options.keep_going stopped the run.
Status RunStage(BuildStage stage, const ShardPlan& plan,
                const std::string& build_dir, const TokenIndex* merged_index,
                const OfflineBuildOptions& options, BuildJournal* journal,
                OfflineBuildReport* report, bool* stopped_out) {
  // Resume scan: trust a journal entry only after re-hashing its snapshot,
  // so a crash mid-write (torn file, torn journal line) degrades to a
  // rebuild instead of a corrupt merge.
  std::vector<size_t> pending;
  for (size_t i = 0; i < plan.shards.size(); ++i) {
    uint32_t crc = 0;
    if (journal->Lookup(stage, i, &crc)) {
      if (PartialVerifies(*journal, build_dir, stage, i)) {
        ++report->skipped;
        continue;
      }
      UNIDETECT_LOG(Warning)
          << "offline build: journaled " << BuildStageName(stage) << " shard "
          << i << " failed verification; rebuilding";
      ++report->rebuilt;
    }
    pending.push_back(i);
  }
  if (pending.empty()) return Status::OK();

  StageState state;
  const auto worker = [&]() {
    for (;;) {
      size_t shard_index = 0;
      {
        MutexLock lock(&state.mu);
        if (state.stopped || !state.error.ok() ||
            state.cursor == pending.size()) {
          return;
        }
        shard_index = pending[state.cursor];
        // Consulted under the mutex so "stop after K shards" is exact:
        // once one worker sees false, no other worker claims a shard.
        if (options.keep_going && !options.keep_going(stage, shard_index)) {
          state.stopped = true;
          return;
        }
        ++state.cursor;
      }
      Result<Model> partial =
          stage == BuildStage::kIndex
              ? BuildIndexPartial(plan.shards[shard_index], plan.trainer.model)
              : BuildObservationPartial(plan.shards[shard_index],
                                        *merged_index, plan.trainer);
      Status status = partial.status();
      uint32_t crc = 0;
      if (status.ok()) {
        partial.ValueOrDie().Finalize();
        const std::string bytes = EncodeModelSnapshot(partial.ValueOrDie());
        crc = Crc32(bytes);
        status = WriteStringToFile(
            OfflinePartialPath(build_dir, stage, shard_index), bytes);
      }
      MutexLock lock(&state.mu);
      // The journal is not internally synchronized; Record under the
      // stage mutex serializes appends across workers.
      if (status.ok()) status = journal->Record(stage, shard_index, crc);
      if (!status.ok()) {
        if (state.error.ok()) state.error = status;
        return;
      }
      ++state.built;
    }
  };

  if (options.num_threads == 1) {
    worker();
  } else {
    ThreadPool pool(options.num_threads);
    const size_t workers = std::min(pool.num_threads(), pending.size());
    for (size_t i = 0; i < workers; ++i) pool.Submit(worker);
    pool.Wait();
  }

  MutexLock lock(&state.mu);
  report->built += state.built;
  if (!state.error.ok()) return state.error;
  if (state.stopped) *stopped_out = true;
  return Status::OK();
}

/// \brief Decodes every stage-1 partial and folds it into one model whose
/// token index covers the whole corpus (the stage-2 featurization input).
Result<Model> MergeIndexPartials(const ShardPlan& plan,
                                 const std::string& build_dir) {
  Model merged(plan.trainer.model);
  for (size_t i = 0; i < plan.shards.size(); ++i) {
    UNIDETECT_ASSIGN_OR_RETURN(
        const Model partial,
        LoadPartial(OfflinePartialPath(build_dir, BuildStage::kIndex, i)));
    merged.Merge(partial);
  }
  return merged;
}

}  // namespace

std::string OfflineManifestPath(const std::string& build_dir) {
  return StrCat(build_dir, "/manifest.txt");
}

std::string OfflineJournalPath(const std::string& build_dir) {
  return StrCat(build_dir, "/journal.txt");
}

std::string OfflinePartialPath(const std::string& build_dir, BuildStage stage,
                               size_t shard) {
  // Zero-padded so shell globs and directory listings sort in shard order.
  char index[16];
  std::snprintf(index, sizeof(index), "%05zu", shard);
  return StrCat(build_dir, "/", BuildStageName(stage), "-", index, ".udsnap");
}

Status PlanOfflineBuild(const std::vector<std::string>& input_dirs,
                        const TrainerOptions& trainer, size_t num_shards,
                        const std::string& build_dir) {
  std::error_code ec;
  std::filesystem::create_directories(build_dir, ec);
  if (ec) {
    return Status::IOError(
        StrCat("PlanOfflineBuild: cannot create ", build_dir, ": ",
               ec.message()));
  }
  const std::string manifest = OfflineManifestPath(build_dir);
  if (std::filesystem::exists(manifest)) {
    return Status::AlreadyExists(
        StrCat("PlanOfflineBuild: ", manifest,
               " exists; re-planning would orphan journaled partials. Use "
               "AddOfflineInputs (offline_build add-inputs) to grow this "
               "build, or pick a fresh build directory."));
  }
  UNIDETECT_ASSIGN_OR_RETURN(const ShardPlan plan,
                             PlanShards(input_dirs, trainer, num_shards));
  return SaveShardPlan(plan, manifest);
}

Status AddOfflineInputs(const std::string& build_dir,
                        const std::vector<std::string>& new_dirs,
                        size_t num_new_shards) {
  const std::string manifest = OfflineManifestPath(build_dir);
  UNIDETECT_ASSIGN_OR_RETURN(ShardPlan plan, LoadShardPlan(manifest));
  UNIDETECT_RETURN_NOT_OK(ExtendShardPlan(&plan, new_dirs, num_new_shards));
  return SaveShardPlan(plan, manifest);
}

Result<OfflineBuildReport> RunOfflineBuild(const std::string& build_dir,
                                           const OfflineBuildOptions& options) {
  UNIDETECT_ASSIGN_OR_RETURN(const ShardPlan plan,
                             LoadShardPlan(OfflineManifestPath(build_dir)));
  UNIDETECT_ASSIGN_OR_RETURN(BuildJournal journal,
                             BuildJournal::Open(OfflineJournalPath(build_dir)));
  OfflineBuildReport report;
  bool stopped = false;
  UNIDETECT_RETURN_NOT_OK(RunStage(BuildStage::kIndex, plan, build_dir,
                                   /*merged_index=*/nullptr, options, &journal,
                                   &report, &stopped));
  if (stopped) return report;  // completed stays false

  // Stage barrier: observation featurization needs the prevalence of
  // every token in the corpus, so no stage-2 shard may start until every
  // stage-1 partial exists.
  UNIDETECT_ASSIGN_OR_RETURN(const Model index_model,
                             MergeIndexPartials(plan, build_dir));
  UNIDETECT_RETURN_NOT_OK(RunStage(BuildStage::kObservations, plan, build_dir,
                                   &index_model.token_index(), options,
                                   &journal, &report, &stopped));
  report.completed = !stopped;
  return report;
}

Result<Model> MergeOfflineBuild(const std::string& build_dir) {
  UNIDETECT_ASSIGN_OR_RETURN(const ShardPlan plan,
                             LoadShardPlan(OfflineManifestPath(build_dir)));
  UNIDETECT_ASSIGN_OR_RETURN(const BuildJournal journal,
                             BuildJournal::Open(OfflineJournalPath(build_dir)));
  for (size_t i = 0; i < plan.shards.size(); ++i) {
    for (BuildStage stage : {BuildStage::kIndex, BuildStage::kObservations}) {
      if (!PartialVerifies(journal, build_dir, stage, i)) {
        return Status::InvalidArgument(
            StrCat("MergeOfflineBuild: shard ", i, " has no verified ",
                   BuildStageName(stage),
                   " partial; run `offline_build resume ", build_dir,
                   "` first"));
      }
    }
  }
  Model merged(plan.trainer.model);
  for (BuildStage stage : {BuildStage::kIndex, BuildStage::kObservations}) {
    for (size_t i = 0; i < plan.shards.size(); ++i) {
      UNIDETECT_ASSIGN_OR_RETURN(
          const Model partial,
          LoadPartial(OfflinePartialPath(build_dir, stage, i)));
      merged.Merge(partial);
    }
  }
  merged.Finalize();
  return merged;
}

Status MergeOfflineBuildToFile(const std::string& build_dir,
                               const std::string& out_path) {
  UNIDETECT_ASSIGN_OR_RETURN(const Model merged, MergeOfflineBuild(build_dir));
  return merged.Save(out_path);
}

Result<OfflineVerifyReport> VerifyOfflineBuild(const std::string& build_dir,
                                               bool check_inputs) {
  UNIDETECT_ASSIGN_OR_RETURN(const ShardPlan plan,
                             LoadShardPlan(OfflineManifestPath(build_dir)));
  UNIDETECT_ASSIGN_OR_RETURN(const BuildJournal journal,
                             BuildJournal::Open(OfflineJournalPath(build_dir)));
  OfflineVerifyReport report;
  report.shards = plan.shards.size();
  for (size_t i = 0; i < plan.shards.size(); ++i) {
    for (BuildStage stage : {BuildStage::kIndex, BuildStage::kObservations}) {
      uint32_t want = 0;
      if (!journal.Lookup(stage, i, &want)) continue;
      const std::string path = OfflinePartialPath(build_dir, stage, i);
      UNIDETECT_ASSIGN_OR_RETURN(const std::string bytes,
                                 ReadFileToString(path));
      if (Crc32(bytes) != want) {
        return Status::Corruption(
            StrCat("VerifyOfflineBuild: ", path,
                   " does not match its journaled checksum"));
      }
      UNIDETECT_RETURN_NOT_OK(DecodeModelSnapshot(bytes).status());
      ++(stage == BuildStage::kIndex ? report.index_done : report.obs_done);
    }
  }
  if (check_inputs) {
    for (const Shard& shard : plan.shards) {
      for (const ShardFile& file : shard.files) {
        UNIDETECT_ASSIGN_OR_RETURN(const std::string bytes,
                                   ReadFileToString(file.path));
        if (bytes.size() != file.bytes || Crc32(bytes) != file.crc32) {
          return Status::Corruption(
              StrCat("VerifyOfflineBuild: input ", file.path,
                     " changed since it was planned"));
        }
        ++report.inputs_checked;
      }
    }
  }
  return report;
}

}  // namespace unidetect
