#include "offline/shard_builder.h"

#include "offline/streaming_reader.h"

namespace unidetect {

Result<Model> BuildIndexPartial(const Shard& shard,
                                const ModelOptions& options) {
  Model partial(options);
  UNIDETECT_RETURN_NOT_OK(StreamShardTables(shard, [&](Table&& table) {
    partial.mutable_token_index()->AddTable(table);
    partial.mutable_pattern_index()->AddTable(table);
  }));
  return partial;
}

Result<Model> BuildObservationPartial(const Shard& shard,
                                      const TokenIndex& merged_index,
                                      const TrainerOptions& trainer) {
  Model partial(trainer.model);
  UNIDETECT_RETURN_NOT_OK(StreamShardTables(shard, [&](Table&& table) {
    AddTableObservations(table, merged_index, trainer.model,
                         trainer.max_fd_pairs_per_table, &partial);
  }));
  return partial;
}

}  // namespace unidetect
