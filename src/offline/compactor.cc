#include "offline/compactor.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "learn/model.h"
#include "model_format/model_snapshot.h"
#include "model_format/snapshot_v2.h"
#include "util/binary_io.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

/// \brief The fold itself: every layer file re-read with full
/// validation (the compactor doubles as a chain auditor) and merged in
/// chain order. Bit-identical to any other Model::Merge grouping of the
/// same layers — Merge is associative and commutative up to Finalize.
Result<std::string> FoldChain(const std::vector<std::string>& paths) {
  UNIDETECT_ASSIGN_OR_RETURN(
      const Model base,
      LoadModelFromFile(paths[0], SnapshotValidation::kFull));
  Model merged(base.options());
  merged.Merge(base);
  for (size_t i = 1; i < paths.size(); ++i) {
    UNIDETECT_ASSIGN_OR_RETURN(
        const Model delta,
        LoadModelFromFile(paths[i], SnapshotValidation::kFull));
    merged.Merge(delta);
  }
  merged.Finalize();
  return EncodeModelSnapshotV2(merged);
}

}  // namespace

Result<bool> Compactor::CompactOnce() {
  const DetectionService::LayerSet chain = service_->Layers();
  if (chain.ids.size() <= 1 ||
      chain.ids.size() - 1 < options_.trigger_delta_layers) {
    return false;
  }
  for (const std::string& path : chain.paths) {
    if (path.empty()) {
      return Status::InvalidArgument(
          "compactor: a served layer has no backing file (in-memory "
          "model); only file-backed chains can be compacted");
    }
  }
  {
    MutexLock lock(&mu_);
    ++stats_.attempts;
  }
  auto outcome = [&]() -> Result<bool> {
    UNIDETECT_ASSIGN_OR_RETURN(const std::string encoded,
                               FoldChain(chain.paths));
    const std::string tmp_path = options_.output_path + ".tmp";
    UNIDETECT_RETURN_NOT_OK(WriteStringToFile(tmp_path, encoded));
    if (std::rename(tmp_path.c_str(), options_.output_path.c_str()) != 0) {
      return Status::IOError(StrCat("compactor: rename to ",
                                    options_.output_path, " failed"));
    }
    // Compare-and-swap against the generation the fold was computed
    // from: if a delta landed meanwhile, the fold is stale — drop it
    // (the file is a pure function of still-on-disk layers, so nothing
    // is lost) and let the next pass fold the grown chain.
    const Status swap =
        service_->ReloadIfGeneration(options_.output_path, chain.generation);
    if (swap.IsAlreadyExists()) return false;
    UNIDETECT_RETURN_NOT_OK(swap);
    return true;
  }();
  MutexLock lock(&mu_);
  if (!outcome.ok()) {
    ++stats_.failures;
  } else if (*outcome) {
    ++stats_.compactions;
  } else {
    ++stats_.lost_races;
  }
  return outcome;
}

void Compactor::Start() {
  {
    MutexLock lock(&mu_);
    stop_ = false;
  }
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
}

void Compactor::Loop() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (stop_) return;
      cv_.WaitFor(mu_, options_.poll_interval);
      if (stop_) return;
    }
    // Errors are recorded in stats_.failures and retried next tick —
    // a transient IO failure must not kill the background loop.
    (void)CompactOnce();
  }
}

CompactorStats Compactor::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace unidetect
