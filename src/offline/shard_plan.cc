#include "offline/shard_plan.h"

#include <algorithm>
#include <charconv>
#include <limits>
#include <sstream>
#include <utility>

#include "corpus/corpus_io.h"
#include "util/binary_io.h"
#include "util/string_util.h"

namespace unidetect {

namespace {

// Gathers the planned (path, bytes, crc32) entries of `dirs`, reading
// every file once for its checksum.
Result<std::vector<ShardFile>> CollectFiles(
    const std::vector<std::string>& dirs) {
  std::vector<ShardFile> files;
  for (const std::string& dir : dirs) {
    UNIDETECT_ASSIGN_OR_RETURN(const std::vector<std::string> paths,
                               ListCsvFiles(dir));
    for (const std::string& path : paths) {
      UNIDETECT_ASSIGN_OR_RETURN(const std::string bytes,
                                 ReadFileToString(path));
      files.push_back(ShardFile{path, bytes.size(), Crc32(bytes)});
    }
  }
  return files;
}

// Appends `files` split into `num_shards` contiguous slices (same
// balanced partition rule as ParallelFor: the first `rem` shards get one
// extra file).
void AppendShards(std::vector<ShardFile> files, size_t num_shards,
                  std::vector<Shard>* shards) {
  const size_t n = files.size();
  num_shards = std::min(std::max<size_t>(num_shards, 1), std::max<size_t>(n, 1));
  const size_t base = n / num_shards;
  const size_t rem = n % num_shards;
  size_t next = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t take = base + (s < rem ? 1 : 0);
    Shard shard;
    shard.files.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      shard.files.push_back(std::move(files[next++]));
    }
    shards->push_back(std::move(shard));
  }
}

}  // namespace

size_t ShardPlan::num_files() const {
  size_t n = 0;
  for (const Shard& shard : shards) n += shard.files.size();
  return n;
}

Result<ShardPlan> PlanShards(const std::vector<std::string>& input_dirs,
                             const TrainerOptions& trainer,
                             size_t num_shards) {
  if (input_dirs.empty()) {
    return Status::InvalidArgument("PlanShards: no input directories");
  }
  UNIDETECT_ASSIGN_OR_RETURN(std::vector<ShardFile> files,
                             CollectFiles(input_dirs));
  if (files.empty()) {
    return Status::InvalidArgument(
        "PlanShards: input directories contain no CSV files");
  }
  ShardPlan plan;
  plan.input_dirs = input_dirs;
  plan.trainer = trainer;
  plan.trainer.num_threads = 0;  // runtime concern; keep manifests canonical
  AppendShards(std::move(files), num_shards, &plan.shards);
  return plan;
}

Status ExtendShardPlan(ShardPlan* plan,
                       const std::vector<std::string>& new_dirs,
                       size_t num_new_shards) {
  if (new_dirs.empty()) {
    return Status::InvalidArgument("ExtendShardPlan: no new directories");
  }
  UNIDETECT_ASSIGN_OR_RETURN(std::vector<ShardFile> files,
                             CollectFiles(new_dirs));
  if (files.empty()) {
    return Status::InvalidArgument(
        "ExtendShardPlan: new directories contain no CSV files");
  }
  plan->input_dirs.insert(plan->input_dirs.end(), new_dirs.begin(),
                          new_dirs.end());
  AppendShards(std::move(files), num_new_shards, &plan->shards);
  return Status::OK();
}

std::string SerializeShardPlan(const ShardPlan& plan) {
  std::ostringstream os;
  // max_digits10 makes the double -> text -> double round trip exact, so
  // a resumed build reconstructs bit-identical ModelOptions.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << kManifestMagic << '\n';
  const ModelOptions& m = plan.trainer.model;
  os << "options " << (m.featurize.enabled ? 1 : 0) << ' '
     << static_cast<int>(m.smoothing) << ' '
     << static_cast<int>(m.denominator) << ' ' << m.epsilon.min_rows << ' '
     << m.epsilon.fraction << ' ' << m.pseudocount << ' ' << m.min_support
     << ' ' << m.point_grid << ' ' << m.min_column_rows << ' '
     << m.mpd.distance_cap << ' ' << m.mpd.max_values << ' '
     << plan.trainer.max_fd_pairs_per_table << '\n';
  os << "inputs " << plan.input_dirs.size() << '\n';
  for (const std::string& dir : plan.input_dirs) os << "input " << dir << '\n';
  os << "shards " << plan.shards.size() << '\n';
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    const Shard& shard = plan.shards[s];
    os << "shard " << s << ' ' << shard.files.size() << '\n';
    for (const ShardFile& file : shard.files) {
      os << "file " << file.crc32 << ' ' << file.bytes << ' ' << file.path
         << '\n';
    }
  }
  return os.str();
}

namespace {

// Reads "<tag> " off `line` and returns the remainder, or empty nullopt
// semantics via ok flag.
bool ConsumeTag(std::string_view* line, std::string_view tag) {
  if (!StartsWith(*line, tag)) return false;
  line->remove_prefix(tag.size());
  if (line->empty() || line->front() != ' ') return false;
  line->remove_prefix(1);
  return true;
}

template <typename Int>
bool ParseInt(std::string_view* line, Int* out) {
  const char* begin = line->data();
  const char* end = begin + line->size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr == begin) return false;
  line->remove_prefix(static_cast<size_t>(ptr - begin));
  if (!line->empty() && line->front() == ' ') line->remove_prefix(1);
  return true;
}

}  // namespace

Result<ShardPlan> ParseShardPlan(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line) || line != kManifestMagic) {
    return Status::Corruption("ShardPlan: bad magic");
  }

  ShardPlan plan;
  {
    if (!std::getline(is, line)) {
      return Status::Corruption("ShardPlan: truncated manifest");
    }
    std::istringstream ls(line);
    std::string tag;
    int featurize = 1;
    int smoothing = 0;
    int denominator = 0;
    ModelOptions& m = plan.trainer.model;
    ls >> tag >> featurize >> smoothing >> denominator >>
        m.epsilon.min_rows >> m.epsilon.fraction >> m.pseudocount >>
        m.min_support >> m.point_grid >> m.min_column_rows >>
        m.mpd.distance_cap >> m.mpd.max_values >>
        plan.trainer.max_fd_pairs_per_table;
    if (tag != "options" || !ls) {
      return Status::Corruption("ShardPlan: bad options line");
    }
    if (smoothing < 0 || smoothing > 1 || denominator < 0 || denominator > 1) {
      return Status::Corruption("ShardPlan: options enum out of range");
    }
    m.featurize.enabled = featurize != 0;
    m.smoothing = static_cast<SmoothingMode>(smoothing);
    m.denominator = static_cast<DenominatorMode>(denominator);
  }

  size_t num_inputs = 0;
  {
    if (!std::getline(is, line)) {
      return Status::Corruption("ShardPlan: truncated manifest");
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag >> num_inputs;
    if (tag != "inputs" || !ls) {
      return Status::Corruption("ShardPlan: bad inputs line");
    }
    // Every entry occupies at least one manifest line, so any declared
    // count larger than the text itself is a lie; rejecting it here
    // keeps crafted counts from driving allocations below.
    if (num_inputs > text.size()) {
      return Status::Corruption("ShardPlan: input count exceeds manifest");
    }
  }
  for (size_t i = 0; i < num_inputs; ++i) {
    if (!std::getline(is, line)) {
      return Status::Corruption("ShardPlan: truncated input list");
    }
    std::string_view rest = line;
    if (!ConsumeTag(&rest, "input")) {
      return Status::Corruption("ShardPlan: malformed input line");
    }
    plan.input_dirs.emplace_back(rest);
  }

  size_t num_shards = 0;
  {
    if (!std::getline(is, line)) {
      return Status::Corruption("ShardPlan: truncated manifest");
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag >> num_shards;
    if (tag != "shards" || !ls) {
      return Status::Corruption("ShardPlan: bad shards line");
    }
    if (num_shards > text.size()) {
      return Status::Corruption("ShardPlan: shard count exceeds manifest");
    }
  }
  plan.shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    size_t index = 0;
    size_t num_shard_files = 0;
    {
      if (!std::getline(is, line)) {
        return Status::Corruption("ShardPlan: truncated shard list");
      }
      std::istringstream ls(line);
      std::string tag;
      ls >> tag >> index >> num_shard_files;
      if (tag != "shard" || !ls || index != s) {
        return Status::Corruption("ShardPlan: malformed shard header");
      }
      if (num_shard_files > text.size()) {
        return Status::Corruption("ShardPlan: file count exceeds manifest");
      }
    }
    Shard shard;
    shard.files.reserve(num_shard_files);
    for (size_t f = 0; f < num_shard_files; ++f) {
      if (!std::getline(is, line)) {
        return Status::Corruption("ShardPlan: truncated file list");
      }
      std::string_view rest = line;
      ShardFile file;
      if (!ConsumeTag(&rest, "file") || !ParseInt(&rest, &file.crc32) ||
          !ParseInt(&rest, &file.bytes) || rest.empty()) {
        return Status::Corruption("ShardPlan: malformed file line");
      }
      file.path = std::string(rest);
      shard.files.push_back(std::move(file));
    }
    plan.shards.push_back(std::move(shard));
  }
  return plan;
}

Status SaveShardPlan(const ShardPlan& plan, const std::string& path) {
  return WriteStringToFile(path, SerializeShardPlan(plan));
}

Result<ShardPlan> LoadShardPlan(const std::string& path) {
  UNIDETECT_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return ParseShardPlan(text);
}

}  // namespace unidetect
