// Append-only build journal (DESIGN.md section 11).
//
// Each completed (stage, shard) of an offline build appends one line
// recording the CRC-32 of the partial snapshot that was written, flushed
// before the builder moves on. A restarted build trusts an entry only
// after re-hashing the snapshot file on disk, so a journal can never
// vouch for bytes that were lost or torn by a crash; a torn trailing
// line (crash mid-append) is skipped with a warning, never fatal.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "util/result.h"

namespace unidetect {

/// \brief Magic first line of the journal format.
inline constexpr std::string_view kJournalMagic = "UDJOURNAL v1";

/// \brief The two per-shard stages of an offline build. Stage 2 needs
/// the merged index of every stage-1 partial, so the stages form a
/// barrier, not a per-shard sequence.
enum class BuildStage : int {
  kIndex = 0,         ///< token + pattern index partial
  kObservations = 1,  ///< metric observations against the merged index
};

/// \brief Stable on-disk name of a stage ("index" / "obs").
std::string_view BuildStageName(BuildStage stage);

/// \brief The append-only completion log of one build directory.
///
/// Not internally synchronized: callers serialize Record() (the build
/// orchestrator appends under its stage mutex).
class BuildJournal {
 public:
  /// \brief Loads `path` when present (skipping torn or malformed
  /// lines), or starts an empty journal; either way later Record()
  /// calls append to `path`, creating it on first use.
  static Result<BuildJournal> Open(const std::string& path);

  /// \brief Appends one completed-shard entry and flushes it to disk
  /// before returning. A later entry for the same (stage, shard)
  /// supersedes earlier ones (rebuilds after corruption).
  Status Record(BuildStage stage, size_t shard, uint32_t snapshot_crc32);

  /// \brief Last recorded snapshot CRC for (stage, shard).
  bool Lookup(BuildStage stage, size_t shard, uint32_t* crc32) const;

  size_t num_entries() const { return entries_.size(); }

 private:
  std::string path_;
  // std::map: deterministic iteration for any future dump/debug output.
  std::map<std::pair<int, size_t>, uint32_t> entries_;
  // Set when the loaded file did not end in '\n' (crash mid-append): the
  // next Record must start a fresh line instead of gluing onto the torn
  // one.
  bool needs_leading_newline_ = false;
};

}  // namespace unidetect
