// Offline build orchestrator (DESIGN.md section 11): the sharded,
// resumable replacement for "load everything, Trainer::Train" — the
// paper's crunch-T-once MapReduce job recast as a plan of per-shard
// builds whose partial snapshots merge deterministically.
//
// Build directory layout:
//
//   manifest.txt        shard plan (shard_plan.h): inputs, options,
//                       per-shard file lists with CRC-32s
//   journal.txt         append-only completion log (build_journal.h)
//   index-<i>.udsnap    stage-1 partial (token + pattern indexes)
//   obs-<i>.udsnap      stage-2 partial (metric observations)
//
// Determinism contract: for a fixed manifest, the merged snapshot is a
// pure function of the input bytes — byte-identical across shard
// counts, thread counts, merge orders, and crash/resume cycles, and
// byte-identical to single-shot Trainer::Train over the same tables
// (Model::Merge is the shared fold; SubsetStats finalizes in canonical
// (pre, post) order).
//
// Resumability: every completed (stage, shard) is journaled with the
// CRC of its snapshot. A restarted build re-hashes each journaled
// snapshot, skips the ones that verify, and rebuilds missing, torn, or
// corrupted ones. Incremental growth appends new shards to the plan
// (AddOfflineInputs); existing partials are reused untouched.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "learn/model.h"
#include "learn/trainer.h"
#include "offline/build_journal.h"
#include "offline/shard_plan.h"
#include "util/result.h"

namespace unidetect {

/// \brief Well-known paths inside a build directory.
std::string OfflineManifestPath(const std::string& build_dir);
std::string OfflineJournalPath(const std::string& build_dir);
std::string OfflinePartialPath(const std::string& build_dir,
                               BuildStage stage, size_t shard);

/// \brief Runtime knobs for RunOfflineBuild (everything that defines the
/// *output* lives in the manifest instead).
struct OfflineBuildOptions {
  /// Shards built concurrently; 0 = hardware concurrency. The merged
  /// snapshot is identical at any value.
  size_t num_threads = 1;
  /// Consulted before each shard build; returning false stops the run
  /// (no further shards start; completed shards stay journaled). Lets
  /// tests and operators simulate preemption or budget exhaustion —
  /// `offline_build build --stop-after K` routes through this.
  std::function<bool(BuildStage, size_t shard)> keep_going;
};

/// \brief What one RunOfflineBuild invocation did.
struct OfflineBuildReport {
  size_t built = 0;    ///< shard-stages built (or rebuilt) this run
  size_t skipped = 0;  ///< shard-stages verified from the journal and reused
  size_t rebuilt = 0;  ///< journaled shard-stages whose snapshot failed
                       ///< verification and was rebuilt (subset of built)
  bool completed = false;  ///< false when keep_going stopped the run early
};

/// \brief Result of VerifyOfflineBuild.
struct OfflineVerifyReport {
  size_t shards = 0;          ///< shards in the plan
  size_t index_done = 0;      ///< stage-1 partials that verify and decode
  size_t obs_done = 0;        ///< stage-2 partials that verify and decode
  size_t inputs_checked = 0;  ///< input files re-hashed (check_inputs)
  bool mergeable() const { return index_done == shards && obs_done == shards; }
};

/// \brief Plans a new build: partitions `input_dirs` into `num_shards`
/// shards and writes `<build_dir>/manifest.txt`. Refuses to overwrite an
/// existing manifest (re-planning would silently invalidate journaled
/// partials) — grow an existing build with AddOfflineInputs instead.
Status PlanOfflineBuild(const std::vector<std::string>& input_dirs,
                        const TrainerOptions& trainer, size_t num_shards,
                        const std::string& build_dir);

/// \brief Incremental growth: appends `num_new_shards` shards covering
/// `new_dirs` to the existing plan. Old shards (and their journaled
/// partials) are untouched. Note the documented approximation: old
/// shards' observations keep the feature keys computed against the
/// index as of their build; run a fresh full build to re-key everything
/// against the grown corpus.
Status AddOfflineInputs(const std::string& build_dir,
                        const std::vector<std::string>& new_dirs,
                        size_t num_new_shards);

/// \brief Builds (or resumes) every incomplete shard-stage of the plan:
/// stage 1 across all shards, then — once every index partial exists —
/// stage 2 against the merged index. Journal-verified shards are
/// skipped; corrupt or missing partials are rebuilt.
Result<OfflineBuildReport> RunOfflineBuild(
    const std::string& build_dir, const OfflineBuildOptions& options = {});

/// \brief Folds every shard's partials into the final model. Fails with
/// InvalidArgument when any shard-stage is missing or unverified (run
/// RunOfflineBuild first).
Result<Model> MergeOfflineBuild(const std::string& build_dir);

/// \brief MergeOfflineBuild + Model::Save to `out_path` (the snapshot
/// DetectionService::Create/Reload consumes).
Status MergeOfflineBuildToFile(const std::string& build_dir,
                               const std::string& out_path);

/// \brief Audits a build directory: parses the manifest and journal,
/// re-hashes and decodes every journaled partial snapshot, and (with
/// `check_inputs`) re-hashes every planned input file. Returns the
/// first Corruption found, or the completion census.
Result<OfflineVerifyReport> VerifyOfflineBuild(const std::string& build_dir,
                                               bool check_inputs = false);

}  // namespace unidetect
