// Delta snapshot builder: trains a small model over only the *new*
// corpus shards and writes it as a delta UDSNAP artifact chained to an
// existing base (model_format/delta_snapshot.h, DESIGN.md §15).
//
// The delta carries the base's ModelOptions verbatim — the serving tier
// refuses to stack layers trained under different knobs — and a
// kDeltaManifest section naming the base and parent artifact ids plus
// its 1-based depth, so `DetectionService::ApplyDelta` can verify the
// chain by content hash before swapping the layer in.
//
// Documented approximation (the same one AddOfflineInputs makes): the
// delta's observation feature keys are computed against the delta's own
// token index, not the union index of base + delta. The layered stack is
// therefore byte-identical to the Model::Merge fold of the same layers —
// the keystone invariant — but not to a single-shot retrain over the
// union corpus; run a fresh full build when re-keying matters.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model_format/delta_snapshot.h"
#include "util/result.h"

namespace unidetect {

/// \brief Inputs of one delta build.
struct DeltaBuildSpec {
  /// The chain's base snapshot (a UDSNAP artifact with no manifest).
  std::string base_path;
  /// The layer directly below the new delta: empty — the common case —
  /// means the delta sits directly on the base (depth 1); otherwise the
  /// previous delta artifact of the same chain.
  std::string parent_path;
  /// Directories of new `*.csv` shards (corpus/corpus_io.h semantics:
  /// lexicographic order, unparseable files skipped with a warning).
  std::vector<std::string> input_dirs;
  /// Output artifact path (written via temp file + rename).
  std::string out_path;
  /// Training threads; 0 = hardware concurrency. Output is identical at
  /// any value.
  size_t num_threads = 1;
  /// Trainer FD-pair cap (TrainerOptions::max_fd_pairs_per_table).
  size_t max_fd_pairs_per_table = 30;
};

/// \brief What BuildDeltaSnapshot produced.
struct DeltaBuildReport {
  DeltaManifest manifest;     ///< chain link written into the artifact
  uint64_t artifact_id = 0;   ///< content hash of the written delta
  size_t tables = 0;          ///< tables trained into the delta
  uint64_t encoded_bytes = 0; ///< size of the written artifact
};

/// \brief Trains over `spec.input_dirs` under the base's options and
/// writes the delta artifact. InvalidArgument when the base is itself a
/// delta, the parent belongs to a different chain, or the chain would
/// exceed kMaxDeltaDepth; Corruption/IOError bubble up from the
/// identity reads.
Result<DeltaBuildReport> BuildDeltaSnapshot(const DeltaBuildSpec& spec);

}  // namespace unidetect
