#include "offline/streaming_reader.h"

#include <filesystem>
#include <string>
#include <utility>

#include "util/binary_io.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

Status StreamShardTables(const Shard& shard, const TableVisitor& visit) {
  for (const ShardFile& file : shard.files) {
    UNIDETECT_ASSIGN_OR_RETURN(const std::string bytes,
                               ReadFileToString(file.path));
    if (bytes.size() != file.bytes || Crc32(bytes) != file.crc32) {
      return Status::Corruption(
          StrCat("StreamShardTables: ", file.path,
                 " changed since it was planned (size/checksum mismatch); "
                 "re-run `offline_build plan` against the current inputs"));
    }
    auto csv = ParseCsv(bytes);
    if (!csv.ok()) {
      UNIDETECT_LOG(Warning) << "skipping " << file.path << ": "
                             << csv.status().ToString();
      continue;
    }
    auto table = Table::FromCsv(
        *csv, std::filesystem::path(file.path).stem().string());
    if (!table.ok()) {
      UNIDETECT_LOG(Warning) << "skipping " << file.path << ": "
                             << table.status().ToString();
      continue;
    }
    visit(std::move(table).ValueOrDie());
  }
  return Status::OK();
}

}  // namespace unidetect
