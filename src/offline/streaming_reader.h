// Streaming table reader for shard builds (DESIGN.md section 11).
//
// Visits the tables of a planned shard one at a time, so a builder holds
// at most one parsed table in memory — unlike LoadCorpusFromDirectory,
// which materializes an entire directory before training can start and
// therefore caps corpus size at RAM.
//
// Skip semantics deliberately match LoadCorpusFromDirectory: a file that
// fails to parse is logged and skipped, never fatal (a corpus crawl
// always contains some junk), so an N-shard streamed build observes
// exactly the tables a single-shot in-memory build observes. Checksum
// mismatches are different: the planned CRC-32 pinned the input bytes,
// so drift since planning aborts the stream with Corruption — silently
// training on changed inputs would desynchronize shards planned at
// different times.

#pragma once

#include <functional>

#include "offline/shard_plan.h"
#include "table/table.h"
#include "util/result.h"

namespace unidetect {

/// \brief Receives each streamed table; tables arrive in planned file
/// order.
using TableVisitor = std::function<void(Table&&)>;

/// \brief Streams the tables of one shard's planned files through
/// `visit`, verifying each file's CRC-32 against the plan first.
Status StreamShardTables(const Shard& shard, const TableVisitor& visit);

}  // namespace unidetect
