#include "offline/build_journal.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/binary_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

std::string_view BuildStageName(BuildStage stage) {
  return stage == BuildStage::kIndex ? "index" : "obs";
}

namespace {

bool ParseStage(std::string_view name, BuildStage* stage) {
  if (name == "index") {
    *stage = BuildStage::kIndex;
    return true;
  }
  if (name == "obs") {
    *stage = BuildStage::kObservations;
    return true;
  }
  return false;
}

}  // namespace

Result<BuildJournal> BuildJournal::Open(const std::string& path) {
  BuildJournal journal;
  journal.path_ = path;

  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return journal;

  UNIDETECT_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  journal.needs_leading_newline_ = !text.empty() && text.back() != '\n';
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kJournalMagic) {
    return Status::Corruption("BuildJournal: bad magic in " + path);
  }
  size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string stage_name;
    size_t shard = 0;
    uint32_t crc = 0;
    BuildStage stage{};
    ls >> stage_name >> shard >> crc;
    if (!ls || !ParseStage(stage_name, &stage)) {
      // A torn final line is the expected residue of a crash mid-append;
      // the entry it would have recorded is simply rebuilt.
      UNIDETECT_LOG(Warning) << "BuildJournal: skipping malformed line "
                             << line_number << " of " << path;
      continue;
    }
    journal.entries_[{static_cast<int>(stage), shard}] = crc;
  }
  return journal;
}

Status BuildJournal::Record(BuildStage stage, size_t shard,
                            uint32_t snapshot_crc32) {
  std::error_code ec;
  const bool fresh = !std::filesystem::exists(path_, ec);
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    return Status::IOError("BuildJournal: cannot open " + path_ +
                           " for append");
  }
  if (fresh) out << kJournalMagic << '\n';
  if (needs_leading_newline_) {
    out << '\n';
    needs_leading_newline_ = false;
  }
  out << BuildStageName(stage) << ' ' << shard << ' ' << snapshot_crc32
      << '\n';
  out.flush();
  if (!out) {
    return Status::IOError("BuildJournal: write to " + path_ + " failed");
  }
  entries_[{static_cast<int>(stage), shard}] = snapshot_crc32;
  return Status::OK();
}

bool BuildJournal::Lookup(BuildStage stage, size_t shard,
                          uint32_t* crc32) const {
  auto it = entries_.find({static_cast<int>(stage), shard});
  if (it == entries_.end()) return false;
  *crc32 = it->second;
  return true;
}

}  // namespace unidetect
