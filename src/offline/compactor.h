// Background compactor: folds a served base+delta chain back into a
// single fresh base — the LSM-style "merge the memtable stack" step of
// DESIGN.md §15.
//
// Compaction protocol:
//
//   1. Snapshot the served chain (DetectionService::Layers): the layer
//      paths, artifact ids, and the generation they were captured at.
//   2. Load every layer from disk with FULL validation and fold them
//      with Model::Merge in chain order — the same write-side fold the
//      offline pipeline uses, and the correctness oracle the layered
//      read path is property-tested against. The compacted artifact is
//      therefore bit-identical to what a single-shot merge would write.
//   3. Write the compacted base via temp file + rename.
//   4. ReloadIfGeneration(output, captured generation): the swap lands
//      only if the chain has not moved since step 1. A concurrent
//      ApplyDelta wins the race — the compactor simply observes the
//      grown chain on its next pass and re-folds. Nothing is ever lost:
//      the compacted file is a pure function of layers that remain on
//      disk.
//
// The compactor never mutates layer artifacts, so a crashed or stopped
// compactor leaves serving untouched.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "serving/detection_service.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace unidetect {

struct CompactorOptions {
  /// Where the compacted base snapshot is written (temp + rename).
  std::string output_path;
  /// Compact only when at least this many delta layers are stacked.
  size_t trigger_delta_layers = 1;
  /// Background poll period between chain inspections.
  std::chrono::milliseconds poll_interval{50};
};

/// \brief Counters of one compactor's lifetime (monotonic).
struct CompactorStats {
  uint64_t attempts = 0;    ///< folds started (chain met the trigger)
  uint64_t compactions = 0; ///< folds that swapped in successfully
  uint64_t lost_races = 0;  ///< folds beaten by a concurrent swap
  uint64_t failures = 0;    ///< folds that errored (load/write/reload)
};

/// \brief Folds a DetectionService's delta chain into fresh bases,
/// either on demand (CompactOnce) or from a background thread
/// (Start/Stop). The service must outlive the compactor.
class Compactor {
 public:
  Compactor(DetectionService* service, CompactorOptions options)
      : service_(service), options_(std::move(options)) {}
  ~Compactor() { Stop(); }

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// \brief One full inspect-fold-swap pass. Returns true when a
  /// compacted base was swapped in; false when there was nothing to do
  /// (chain below trigger) or a concurrent swap won the race. Errors
  /// (unreadable layers, in-memory base, write failures) are returned
  /// and leave serving untouched.
  Result<bool> CompactOnce() EXCLUDES(mu_);

  /// \brief Starts the background poll loop (idempotent).
  void Start();

  /// \brief Stops and joins the background thread (idempotent; also run
  /// by the destructor).
  void Stop();

  CompactorStats stats() const EXCLUDES(mu_);

 private:
  void Loop();

  DetectionService* const service_;
  const CompactorOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  CompactorStats stats_ GUARDED_BY(mu_);
  // Started/joined only from the owner's thread (Start/Stop/dtor).
  std::thread thread_;
};

}  // namespace unidetect
