// Shard planning for the offline build pipeline (DESIGN.md section 11).
//
// A plan deterministically partitions the CSV files of the input
// directories into contiguous shards, pinning every input file with its
// byte count and CRC-32 so a resumed (or re-run) build can prove it is
// crunching the same bytes it planned over. The plan also carries the
// TrainerOptions the build was planned with: every stage of a resumable
// build must use identical options or the merged output would silently
// diverge from a single-shot Trainer::Train.
//
// The manifest is a line-oriented text file ("UDPLAN v1"); fields that
// may contain spaces (paths) always come last on their line.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "learn/trainer.h"
#include "util/result.h"

namespace unidetect {

/// \brief Magic first line of the manifest format.
inline constexpr std::string_view kManifestMagic = "UDPLAN v1";

/// \brief One planned input file, pinned by size and checksum.
struct ShardFile {
  std::string path;
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
};

/// \brief One shard: a contiguous slice of the planned file list.
struct Shard {
  std::vector<ShardFile> files;
};

/// \brief A complete offline build plan.
struct ShardPlan {
  std::vector<std::string> input_dirs;
  /// Options the build is planned with. `num_threads` is a runtime
  /// concern and is not persisted in the manifest.
  TrainerOptions trainer;
  std::vector<Shard> shards;

  size_t num_files() const;
};

/// \brief Plans `num_shards` contiguous shards over the sorted CSV files
/// of `input_dirs` (directories visited in the given order, files within
/// each in lexicographic order — the same order LoadCorpusFromDirectory
/// uses). Reads every file once to record its CRC-32. `num_shards` is
/// clamped to [1, number of files].
Result<ShardPlan> PlanShards(const std::vector<std::string>& input_dirs,
                             const TrainerOptions& trainer,
                             size_t num_shards);

/// \brief Appends `num_new_shards` shards covering the CSV files of
/// `new_dirs` to an existing plan. Existing shards are untouched, so
/// journal entries and partial snapshots recorded against them stay
/// valid — this is the incremental-growth primitive.
Status ExtendShardPlan(ShardPlan* plan,
                       const std::vector<std::string>& new_dirs,
                       size_t num_new_shards);

/// \brief Manifest codec. Serialize -> Parse round-trips exactly
/// (doubles are printed at max_digits10).
std::string SerializeShardPlan(const ShardPlan& plan);
Result<ShardPlan> ParseShardPlan(std::string_view text);

Status SaveShardPlan(const ShardPlan& plan, const std::string& path);
Result<ShardPlan> LoadShardPlan(const std::string& path);

}  // namespace unidetect
