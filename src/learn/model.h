// Model: the "memorized" output of offline learning (Section 2.2.3).
//
// Holds the token prevalence index and, per feature subset, the
// (theta1, theta2) observations needed to answer smoothed LR queries at
// interactive speed. A Model is built by the Trainer and consumed by the
// detectors; it can be saved to and loaded from a single file.
//
// Subset storage has two phases. During the build phase observations
// accumulate in a hash map; Finalize() moves everything into one
// FeatureKey-sorted vector and lookup becomes a binary search over that
// contiguous array — the same access pattern the UDSNAP v2 snapshot
// index serializes, so a model decoded zero-copy from a mapped snapshot
// (model_format/snapshot_v2.h) and a freshly trained one answer queries
// through identical code. A mapped model pins its file region alive via
// `backing_`.

#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "autodetect/pmi_detector.h"
#include "corpus/token_index.h"
#include "featurize/features.h"
#include "learn/subset_stats.h"
#include "metrics/metric_functions.h"
#include "util/result.h"

namespace unidetect {

/// \brief How P_m(D | S(T)) and P_m(D_O^P | S(T)) are estimated.
enum class SmoothingMode : int {
  /// Range-based predicates of Eq. 12 (the paper's smoothing).
  kRange = 0,
  /// Exact point estimates of Eq. 11 (the ablation the paper rejects as
  /// "highly irregular and non-smooth").
  kPoint = 1,
};

/// \brief Which tail of the pre-perturbation metric forms the denominator.
enum class DenominatorMode : int {
  /// The paper's written formulas: the tail on theta2's *suspicious*
  /// side (max-MAD >= theta2; MPD/UR/FR <= theta2).
  kSuspiciousTail = 0,
  /// The alternative reading suggested by Example 2 (|{UR(D) = 1}|):
  /// the tail on theta2's *clean* side. Compared in bench_ablation.
  kCleanTail = 1,
};

/// \brief Bound on the perturbation size epsilon (Definition 2):
/// allowed rows = max(min_rows, ceil(fraction * num_rows)).
struct EpsilonPolicy {
  size_t min_rows = 2;
  double fraction = 0.01;

  size_t AllowedRows(size_t num_rows) const;
};

/// \brief Configuration shared by Trainer and detectors. Stored inside
/// the model so a trained model carries its own conventions.
struct ModelOptions {
  FeaturizeOptions featurize;
  SmoothingMode smoothing = SmoothingMode::kRange;
  DenominatorMode denominator = DenominatorMode::kSuspiciousTail;
  EpsilonPolicy epsilon;
  MpdOptions mpd;
  /// Additive smoothing: LR = (num + pseudocount) / (den + 2*pseudocount).
  /// Keeps sparse evidence conservative (LR -> 1/2, never 0/0).
  double pseudocount = 1.0;
  /// Subsets with fewer observations than this yield LR = 1 (no evidence,
  /// no detection) instead of an unreliable estimate.
  uint64_t min_support = 30;
  /// Quantization step for SmoothingMode::kPoint.
  double point_grid = 0.1;
  /// Columns with fewer rows than this are skipped entirely; tiny columns
  /// carry no statistical signal.
  size_t min_column_rows = 8;
};

/// \brief Suspicious-tail direction of each error class's metric.
SurpriseDirection DirectionOf(ErrorClass c);

/// \brief The Eq. 12 likelihood-ratio arithmetic, factored so that the
/// flat path (Model::LikelihoodRatio) and the layered path
/// (ModelStack::LikelihoodRatio, learn/model_stack.h) run literally the
/// same instructions. Counts accumulate as integers per layer and are
/// summed before the single floating-point division, which is what makes
/// a base+deltas stack answer byte-identically to the Model::Merge fold.
namespace lr_internal {

/// \brief True when the perturbation did not move the metric toward
/// "clean" for `dir` — such a candidate carries no surprise (LR = 1).
inline bool PerturbationNotCleaner(SurpriseDirection dir, double theta1,
                                   double theta2) {
  if (dir == SurpriseDirection::kHigherMoreSurprising) return theta2 >= theta1;
  return theta2 <= theta1;
}

/// \brief Adds one layer's numerator/denominator counts for a
/// (theta1, theta2) query to `*num` / `*den`.
void AccumulateLrCounts(const SubsetStats& stats, const ModelOptions& options,
                        SurpriseDirection dir, double theta1, double theta2,
                        uint64_t* num, uint64_t* den);

/// \brief The smoothed ratio over the (possibly layer-summed) counts:
/// min((num + pc) / (den + 2pc), 1). Every double op of the query
/// happens here, after all integer summation.
inline double SmoothedLrFromCounts(uint64_t num, uint64_t den,
                                   const ModelOptions& options) {
  const double pc = options.pseudocount;
  const double lr = (static_cast<double>(num) + pc) /
                    (static_cast<double>(den) + 2.0 * pc);
  return std::min(lr, 1.0);
}

}  // namespace lr_internal

/// \brief Magic first line of the legacy text model format, used by the
/// Load-time format sniff.
inline constexpr std::string_view kLegacyModelMagic = "UniDetectModel v1";

/// \brief Trained Uni-Detect model.
class Model {
 public:
  Model() = default;
  explicit Model(ModelOptions options) : options_(std::move(options)) {}

  const ModelOptions& options() const { return options_; }
  const TokenIndex& token_index() const { return token_index_; }
  TokenIndex* mutable_token_index() { return &token_index_; }

  /// \brief Pattern co-occurrence statistics (Auto-Detect mechanism,
  /// Section 3.5) — trained alongside the metric subsets and used by the
  /// optional pattern-incompatibility detector.
  const PatternIndex& pattern_index() const { return pattern_index_; }
  PatternIndex* mutable_pattern_index() { return &pattern_index_; }

  /// \brief Adds one training observation (build phase).
  void AddObservation(FeatureKey key, double theta1, double theta2);

  /// \brief Installs a fully-built subset (snapshot decode path; build
  /// phase only). The key must not already be present.
  void InsertSubset(FeatureKey key, SubsetStats stats);

  /// \brief Appends an already-finalized subset directly to the sorted
  /// store (the v2 decode path, whose index is key-sorted on disk).
  /// Keys must arrive in strictly ascending order and the hash-map build
  /// store must be empty; Finalize() afterwards is then O(#subsets).
  void InsertSubsetSorted(FeatureKey key, SubsetStats stats);

  /// \brief Visits every (key, stats) pair in ascending key order — a
  /// deterministic order independent of hash seed or standard library.
  template <typename Fn>
  void ForEachSubsetSorted(Fn&& fn) const {
    if (building_.empty()) {
      for (const auto& [key, stats] : subsets_sorted_) fn(key, stats);
      return;
    }
    std::vector<FeatureKey> keys;
    keys.reserve(building_.size());
    for (const auto& [key, stats] : building_) keys.push_back(key);
    std::sort(keys.begin(), keys.end(),
              [](FeatureKey a, FeatureKey b) { return a.packed < b.packed; });
    for (FeatureKey key : keys) fn(key, building_.at(key));
  }

  /// \brief Merges subsets from a shard-local model (build phase). The
  /// shard may be build-phase or finalized (e.g. loaded from a snapshot).
  void MergeObservations(const Model& shard);

  /// \brief Merges a partial model — token index, pattern index, and
  /// per-subset observations — into this build-phase model. The partial
  /// may itself be finalized (e.g. decoded from a UDSNAP snapshot).
  ///
  /// Merge is associative and commutative up to Finalize(): every folded
  /// quantity is additive and Finalize() canonically orders each subset
  /// by (pre, post), so merging any permutation or grouping of partials
  /// produces bit-identical Save() output. This is the one merge
  /// implementation shared by Trainer::Train's in-process reduction and
  /// the offline shard pipeline (src/offline/).
  void Merge(const Model& partial);

  /// \brief Sorts all subsets into the contiguous key-ordered store;
  /// required before queries.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// \brief The stats for `key`, or nullptr if absent. Binary search over
  /// the sorted store once finalized; hash lookup during the build phase.
  const SubsetStats* FindSubset(FeatureKey key) const;

  /// \brief Smoothed likelihood ratio of Eq. 12 for a candidate with
  /// metrics (theta1, theta2) in the subset selected by `key`.
  ///
  /// Returns a value in (0, 1]; smaller = more surprising = more likely a
  /// real error. Returns exactly 1.0 when there is no usable evidence
  /// (unknown subset, support below min_support) or when the perturbation
  /// did not move the metric toward "clean".
  double LikelihoodRatio(ErrorClass cls, FeatureKey key, double theta1,
                         double theta2) const;

  /// \brief Number of feature subsets with observations.
  size_t num_subsets() const {
    return building_.size() + subsets_sorted_.size();
  }

  /// \brief Total observations across subsets.
  uint64_t num_observations() const;

  /// \brief Observation count for one subset (0 if absent).
  uint64_t SubsetSupport(FeatureKey key) const;

  /// \brief Ties an external buffer's lifetime to this model — the mapped
  /// snapshot region that borrowed SubsetStats spans point into. The last
  /// Model (or Model copy) referencing the region unmaps it.
  void SetBacking(std::shared_ptr<const void> backing, uint64_t mapped_bytes);

  /// \brief Bytes of mapped (page-cache-shared) model storage; 0 for a
  /// fully owned model.
  uint64_t mapped_bytes() const { return mapped_bytes_; }

  /// \brief Approximate private heap bytes held by subset storage; pairs
  /// with mapped_bytes() as the serving tier's resident/mapped gauges.
  uint64_t ApproxResidentBytes() const;

  /// \brief Persistence. Save writes the versioned, checksummed binary
  /// snapshot format (model_format/model_snapshot.h); Load sniffs the
  /// magic bytes and reads either a binary snapshot (v2 via zero-copy
  /// mmap, v1 via owned decode) or the legacy "UniDetectModel v1" text
  /// format.
  Status Save(const std::string& path) const;
  static Result<Model> Load(const std::string& path);

  /// \brief Legacy text format, kept readable (and writable, for format
  /// migration tests and the text-vs-binary load benchmark).
  std::string Serialize() const;
  static Result<Model> Deserialize(std::string_view text);

 private:
  ModelOptions options_;
  TokenIndex token_index_;
  PatternIndex pattern_index_;
  // Build-phase accumulation store. Finalize() drains it into
  // subsets_sorted_; exactly one of the two containers is non-empty at
  // any time.
  std::unordered_map<FeatureKey, SubsetStats, FeatureKeyHash> building_;
  // Key-ascending store queried by binary search after Finalize().
  std::vector<std::pair<FeatureKey, SubsetStats>> subsets_sorted_;
  // Keepalive for borrowed subset storage (the mapped snapshot region).
  std::shared_ptr<const void> backing_;
  uint64_t mapped_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace unidetect
