// ModelStack: the layered read path over base + delta snapshots.
//
// An LSM-style serving arrangement (ROADMAP item 2): layer 0 is the
// immutable mmap'd base model, layers 1..K are small delta models built
// by `offline_build delta` from only the new corpus shards. Queries run
// against the stack as if the layers had been folded by Model::Merge —
// and answer *byte-identically* to that fold, because every statistic
// the detectors consume is an additive integer count (tail counts,
// subset support, token table counts, pattern co-occurrence counts)
// that is summed across layers before the shared floating-point
// arithmetic in lr_internal / TokenPrevalence / PatternPrevalence runs
// once over the sums. Model::Merge stays the write-side fold (the
// compactor's correctness oracle, src/offline/compactor.h); this class
// is the read-side overlay.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "learn/model.h"

namespace unidetect {

/// \brief An immutable ordered list of finalized Model layers queried
/// as one logical model.
///
/// Layers are held by shared_ptr, so a stack (and any detector wired to
/// it) keeps every layer's backing snapshot region mapped. The stack
/// itself is cheap to copy — WithDelta() builds the next serving stack
/// by copying K pointers, never touching model payloads.
class ModelStack {
 public:
  /// All layers must be finalized; layer 0 is the base whose
  /// ModelOptions govern every query (the serving tier rejects deltas
  /// trained under different options before they get here).
  explicit ModelStack(std::vector<std::shared_ptr<const Model>> layers);

  /// \brief A single-layer stack borrowing `model` without ownership —
  /// the legacy `UniDetect(const Model*)` path. `model` must outlive
  /// the stack.
  static ModelStack Borrow(const Model* model);

  /// \brief A new stack with `delta` appended as the topmost layer.
  ModelStack WithDelta(std::shared_ptr<const Model> delta) const;

  size_t num_layers() const { return layers_.size(); }
  const Model& layer(size_t i) const { return *layers_[i]; }
  const std::shared_ptr<const Model>& layer_ptr(size_t i) const {
    return layers_[i];
  }
  const Model& base() const { return *layers_.front(); }

  /// \brief Query-time conventions: always the base layer's.
  const ModelOptions& options() const { return base().options(); }

  /// \brief Layer-summed token prevalence (detect/dictionary and the
  /// uniqueness/FD featurizers consume this view).
  const TokenPrevalence& token_prevalence() const { return token_prevalence_; }

  /// \brief Layer-summed pattern co-occurrence (the PMI detector).
  const PatternPrevalence& pattern_prevalence() const {
    return pattern_prevalence_;
  }

  /// \brief Eq. 12 smoothed likelihood ratio over the layered counts.
  /// Byte-identical to Model::LikelihoodRatio on the Merge fold of the
  /// layers: integer numerator/denominator counts and subset support
  /// are summed across layers, then fed through the same lr_internal
  /// arithmetic the flat path uses.
  double LikelihoodRatio(ErrorClass cls, FeatureKey key, double theta1,
                         double theta2) const;

  /// \brief Observation count for one subset, summed over layers.
  uint64_t SubsetSupport(FeatureKey key) const;

  /// \brief Total observations across layers.
  uint64_t num_observations() const;

 private:
  std::vector<std::shared_ptr<const Model>> layers_;
  // Views over the layers' indexes; the shared_ptrs above keep the
  // pointed-at indexes alive for the views' lifetime.
  TokenPrevalence token_prevalence_;
  PatternPrevalence pattern_prevalence_;
};

}  // namespace unidetect
