#include "learn/candidates.h"

#include <algorithm>

#include "metrics/dispersion.h"

namespace unidetect {

OutlierCandidate ExtractOutlierCandidate(const Column& column,
                                         const ModelOptions& options) {
  OutlierCandidate out;
  const ColumnType type = column.type();
  if (type != ColumnType::kInteger && type != ColumnType::kFloat) return out;
  if (column.size() < options.min_column_rows) return out;
  const auto& values = column.NumericValues();
  if (values.size() < options.min_column_rows) return out;
  if (column.NumericFraction() < 0.8) return out;

  const MaxScore before = MaxMadScore(values);
  if (!before.valid) return out;

  std::vector<double> remaining = values;
  remaining.erase(remaining.begin() +
                  static_cast<std::ptrdiff_t>(before.index));
  const MaxScore after = MaxMadScore(remaining);
  if (!after.valid) return out;

  out.valid = true;
  out.key = OutlierFeatures(column, options.featurize);
  out.theta1 = before.score;
  out.theta2 = after.score;
  out.row = column.NumericRows()[before.index];
  out.cell = column.cell(out.row);
  out.value = values[before.index];
  return out;
}

SpellingCandidate ExtractSpellingCandidate(const Column& column,
                                           const ModelOptions& options) {
  SpellingCandidate out;
  if (column.size() < options.min_column_rows) return out;
  out.profile = ComputeMpdProfile(column, options.mpd);
  if (!out.profile.valid) return out;
  out.valid = true;
  out.key = SpellingFeatures(column, out.profile, options.featurize);
  out.theta1 = static_cast<double>(out.profile.mpd);
  out.theta2 = static_cast<double>(out.profile.mpd_perturbed);
  return out;
}

UniquenessCandidate ExtractUniquenessCandidate(const Column& column,
                                               size_t column_position,
                                               const TokenPrevalence& index,
                                               const ModelOptions& options) {
  UniquenessCandidate out;
  if (column.size() < options.min_column_rows) return out;
  const UrProfile profile = ComputeUrProfile(column);
  if (!profile.valid) return out;

  const size_t epsilon = options.epsilon.AllowedRows(column.size());
  out.dropped_rows = profile.duplicate_rows;
  if (out.dropped_rows.size() > epsilon) out.dropped_rows.resize(epsilon);

  out.valid = true;
  out.key = UniquenessFeatures(column, column_position, index,
                               options.featurize);
  out.theta1 = profile.ur;
  if (out.dropped_rows.size() == profile.duplicate_rows.size()) {
    out.theta2 = profile.ur_perturbed;
  } else {
    // Partial perturbation: recompute UR on the reduced column.
    const UrProfile partial =
        ComputeUrProfile(column.WithoutRows(out.dropped_rows));
    out.theta2 = partial.valid ? partial.ur : profile.ur;
  }
  return out;
}

FdCandidate ExtractFdCandidate(const Column& lhs, const Column& rhs,
                               const TokenPrevalence& index,
                               const ModelOptions& options) {
  FdCandidate out;
  if (lhs.size() < options.min_column_rows) return out;
  const FrProfile profile = ComputeFrProfile(lhs, rhs);
  if (!profile.valid) return out;

  const size_t epsilon = options.epsilon.AllowedRows(lhs.size());
  out.dropped_rows = profile.violating_rows;
  if (out.dropped_rows.size() > epsilon) out.dropped_rows.resize(epsilon);

  out.valid = true;
  out.key = FdFeatures(lhs, rhs, index, options.featurize);
  out.theta1 = profile.fr;
  out.violating_groups = profile.violating_groups;
  if (out.dropped_rows.size() == profile.violating_rows.size()) {
    out.theta2 = profile.fr_perturbed;
  } else {
    const FrProfile partial = ComputeFrProfile(
        lhs.WithoutRows(out.dropped_rows), rhs.WithoutRows(out.dropped_rows));
    out.theta2 = partial.valid ? partial.fr : profile.fr;
  }
  return out;
}

}  // namespace unidetect
