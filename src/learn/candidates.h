// Candidate extraction: computes, for one column (or column pair), the
// feature key and the (theta1, theta2) metric transition of the natural
// perturbation for each error class.
//
// The Trainer records these transitions for every corpus column; the
// detectors compute the same transition for a test column and look up its
// likelihood ratio. Keeping extraction in one place guarantees the
// offline and online paths agree on metrics, perturbations, and keys.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "corpus/token_index.h"
#include "featurize/features.h"
#include "learn/model.h"
#include "metrics/metric_functions.h"
#include "table/column.h"

namespace unidetect {

/// \brief Numeric-outlier candidate (Section 3.1): theta = max-MAD score
/// before/after dropping the most outlying value.
struct OutlierCandidate {
  bool valid = false;
  FeatureKey key;
  double theta1 = 0.0;
  double theta2 = 0.0;
  size_t row = 0;        ///< row of the suspected outlier
  std::string cell;      ///< its raw cell text
  double value = 0.0;    ///< its numeric value
};

OutlierCandidate ExtractOutlierCandidate(const Column& column,
                                         const ModelOptions& options);

/// \brief Spelling candidate (Section 3.2): theta = MPD before/after
/// dropping one endpoint of the closest pair.
struct SpellingCandidate {
  bool valid = false;
  FeatureKey key;
  double theta1 = 0.0;
  double theta2 = 0.0;
  MpdProfile profile;
};

SpellingCandidate ExtractSpellingCandidate(const Column& column,
                                           const ModelOptions& options);

/// \brief Uniqueness candidate (Section 3.3): theta = UR before/after
/// dropping up to epsilon duplicate rows.
struct UniquenessCandidate {
  bool valid = false;
  FeatureKey key;
  double theta1 = 0.0;
  double theta2 = 0.0;
  /// Duplicate rows the perturbation drops (already capped by epsilon).
  std::vector<size_t> dropped_rows;
};

UniquenessCandidate ExtractUniquenessCandidate(const Column& column,
                                               size_t column_position,
                                               const TokenPrevalence& index,
                                               const ModelOptions& options);

/// \brief FD candidate (Section 3.4) for the ordered pair (lhs -> rhs):
/// theta = FR before/after dropping up to epsilon violating rows.
struct FdCandidate {
  bool valid = false;
  FeatureKey key;
  double theta1 = 0.0;
  double theta2 = 0.0;
  /// Violating rows the perturbation drops (already capped by epsilon).
  std::vector<size_t> dropped_rows;
  size_t violating_groups = 0;
};

FdCandidate ExtractFdCandidate(const Column& lhs, const Column& rhs,
                               const TokenPrevalence& index,
                               const ModelOptions& options);

}  // namespace unidetect
