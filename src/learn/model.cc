#include "learn/model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model_format/model_snapshot.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace unidetect {

size_t EpsilonPolicy::AllowedRows(size_t num_rows) const {
  const auto frac_rows =
      static_cast<size_t>(std::ceil(fraction * static_cast<double>(num_rows)));
  return std::max(min_rows, frac_rows);
}

SurpriseDirection DirectionOf(ErrorClass c) {
  switch (c) {
    case ErrorClass::kOutlier:
      return SurpriseDirection::kHigherMoreSurprising;
    case ErrorClass::kSpelling:
    case ErrorClass::kUniqueness:
    case ErrorClass::kFd:
      return SurpriseDirection::kLowerMoreSurprising;
    case ErrorClass::kPattern:
      // Pattern incompatibility is scored by PMI (Appendix C), which is
      // exp(-LR) up to constants; smaller is more surprising.
      return SurpriseDirection::kLowerMoreSurprising;
  }
  return SurpriseDirection::kHigherMoreSurprising;
}

void Model::AddObservation(FeatureKey key, double theta1, double theta2) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(subsets_sorted_.empty());
  building_[key].Add(theta1, theta2);
}

void Model::InsertSubset(FeatureKey key, SubsetStats stats) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(subsets_sorted_.empty());
  const bool inserted = building_.emplace(key, std::move(stats)).second;
  UNIDETECT_CHECK(inserted);
}

void Model::InsertSubsetSorted(FeatureKey key, SubsetStats stats) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(building_.empty());
  UNIDETECT_CHECK(stats.finalized());
  UNIDETECT_CHECK(subsets_sorted_.empty() ||
                  subsets_sorted_.back().first.packed < key.packed);
  subsets_sorted_.emplace_back(key, std::move(stats));
}

void Model::MergeObservations(const Model& shard) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(subsets_sorted_.empty());
  for (const auto& [key, stats] : shard.building_) {
    building_[key].Merge(stats);
  }
  for (const auto& [key, stats] : shard.subsets_sorted_) {
    building_[key].Merge(stats);
  }
}

void Model::Merge(const Model& partial) {
  UNIDETECT_CHECK(!finalized_);
  token_index_.Merge(partial.token_index_);
  pattern_index_.Merge(partial.pattern_index_);
  MergeObservations(partial);
}

void Model::Finalize() {
  if (finalized_) return;
  if (!building_.empty()) {
    subsets_sorted_.reserve(building_.size());
    for (auto& [key, stats] : building_) {
      subsets_sorted_.emplace_back(key, std::move(stats));
    }
    building_.clear();
    std::sort(subsets_sorted_.begin(), subsets_sorted_.end(),
              [](const auto& a, const auto& b) {
                return a.first.packed < b.first.packed;
              });
  }
  // No-op for subsets already finalized (the snapshot decode paths).
  for (auto& [key, stats] : subsets_sorted_) stats.Finalize();
  finalized_ = true;
}

const SubsetStats* Model::FindSubset(FeatureKey key) const {
  if (!building_.empty()) {
    auto it = building_.find(key);
    return it == building_.end() ? nullptr : &it->second;
  }
  auto it = std::lower_bound(
      subsets_sorted_.begin(), subsets_sorted_.end(), key.packed,
      [](const std::pair<FeatureKey, SubsetStats>& entry, uint64_t packed) {
        return entry.first.packed < packed;
      });
  if (it == subsets_sorted_.end() || it->first.packed != key.packed) {
    return nullptr;
  }
  return &it->second;
}

uint64_t Model::num_observations() const {
  uint64_t total = 0;
  for (const auto& [key, stats] : building_) total += stats.size();
  for (const auto& [key, stats] : subsets_sorted_) total += stats.size();
  return total;
}

uint64_t Model::SubsetSupport(FeatureKey key) const {
  const SubsetStats* stats = FindSubset(key);
  return stats == nullptr ? 0 : stats->size();
}

void Model::SetBacking(std::shared_ptr<const void> backing,
                       uint64_t mapped_bytes) {
  backing_ = std::move(backing);
  mapped_bytes_ = mapped_bytes;
}

uint64_t Model::ApproxResidentBytes() const {
  uint64_t total = subsets_sorted_.capacity() *
                   sizeof(std::pair<FeatureKey, SubsetStats>);
  for (const auto& [key, stats] : building_) {
    total += sizeof(std::pair<FeatureKey, SubsetStats>) + stats.OwnedBytes();
  }
  for (const auto& [key, stats] : subsets_sorted_) {
    total += stats.OwnedBytes();
  }
  return total;
}

namespace lr_internal {

void AccumulateLrCounts(const SubsetStats& stats, const ModelOptions& options,
                        SurpriseDirection dir, double theta1, double theta2,
                        uint64_t* num, uint64_t* den) {
  if (options.smoothing == SmoothingMode::kPoint) {
    *num += stats.CountPointPair(theta1, theta2, options.point_grid);
    *den += stats.CountPointPre(theta2, options.point_grid);
  } else {
    *num += stats.CountSurprising(dir, theta1, theta2);
    *den += options.denominator == DenominatorMode::kSuspiciousTail
                ? stats.CountPreSuspiciousTail(dir, theta2)
                : stats.CountPreCleanTail(dir, theta2);
  }
}

}  // namespace lr_internal

double Model::LikelihoodRatio(ErrorClass cls, FeatureKey key, double theta1,
                              double theta2) const {
  UNIDETECT_CHECK(finalized_);
  const SurpriseDirection dir = DirectionOf(cls);

  // A perturbation that does not move the metric toward "clean" carries
  // no surprise whatsoever.
  if (lr_internal::PerturbationNotCleaner(dir, theta1, theta2)) return 1.0;

  const SubsetStats* stats = FindSubset(key);
  if (stats == nullptr) return 1.0;
  if (stats->size() < options_.min_support) return 1.0;

  uint64_t num = 0;
  uint64_t den = 0;
  lr_internal::AccumulateLrCounts(*stats, options_, dir, theta1, theta2, &num,
                                  &den);

  // A thin denominator means the corpus has barely any columns that look
  // like the *perturbed* table; the ratio would be dominated by
  // pseudocounts and read as (spurious) surprise. No evidence, no call.
  if (den < options_.min_support) return 1.0;

  return lr_internal::SmoothedLrFromCounts(num, den, options_);
}

// ---------------------------------------------------------------------------
// Serialization.

std::string Model::Serialize() const {
  std::ostringstream os;
  os << kLegacyModelMagic << '\n';
  os << "options " << (options_.featurize.enabled ? 1 : 0) << ' '
     << static_cast<int>(options_.smoothing) << ' '
     << static_cast<int>(options_.denominator) << ' '
     << options_.epsilon.min_rows << ' ' << options_.epsilon.fraction << ' '
     << options_.pseudocount << ' ' << options_.min_support << ' '
     << options_.point_grid << ' ' << options_.min_column_rows << ' '
     << options_.mpd.distance_cap << ' ' << options_.mpd.max_values << '\n';
  os << "subsets " << num_subsets() << '\n';
  ForEachSubsetSorted([&](FeatureKey key, const SubsetStats& stats) {
    std::string stats_text;
    stats.SerializeTo(&stats_text);
    os << key.packed << ' ' << stats_text << '\n';
  });
  const std::string index_text = token_index_.Serialize();
  os << "tokenindex " << index_text.size() << '\n' << index_text;
  const std::string pattern_text = pattern_index_.Serialize();
  os << "patternindex " << pattern_text.size() << '\n' << pattern_text;
  return os.str();
}

Result<Model> Model::Deserialize(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line) || line != kLegacyModelMagic) {
    return Status::Corruption("Model: bad magic");
  }

  Model out;
  {
    if (!std::getline(is, line)) return Status::Corruption("Model: truncated");
    std::istringstream ls(line);
    std::string tag;
    int featurize = 1;
    int smoothing = 0;
    int denominator = 0;
    ls >> tag >> featurize >> smoothing >> denominator >>
        out.options_.epsilon.min_rows >> out.options_.epsilon.fraction >>
        out.options_.pseudocount >> out.options_.min_support >>
        out.options_.point_grid >> out.options_.min_column_rows >>
        out.options_.mpd.distance_cap >> out.options_.mpd.max_values;
    if (tag != "options" || !ls) {
      return Status::Corruption("Model: bad options line");
    }
    out.options_.featurize.enabled = featurize != 0;
    out.options_.smoothing = static_cast<SmoothingMode>(smoothing);
    out.options_.denominator = static_cast<DenominatorMode>(denominator);
  }
  size_t num_subsets = 0;
  {
    if (!std::getline(is, line)) return Status::Corruption("Model: truncated");
    std::istringstream ls(line);
    std::string tag;
    ls >> tag >> num_subsets;
    if (tag != "subsets" || !ls) {
      return Status::Corruption("Model: bad subsets line");
    }
  }
  for (size_t i = 0; i < num_subsets; ++i) {
    if (!std::getline(is, line)) {
      return Status::Corruption("Model: truncated subset list");
    }
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::Corruption("Model: malformed subset line");
    }
    FeatureKey key{std::strtoull(line.c_str(), nullptr, 10)};
    auto stats = SubsetStats::Deserialize(
        std::string_view(line).substr(space + 1));
    if (!stats.ok()) return stats.status();
    if (out.building_.count(key) != 0) {
      return Status::Corruption("Model: duplicate subset key");
    }
    out.building_.emplace(key, std::move(stats).ValueOrDie());
  }
  {
    if (!std::getline(is, line)) return Status::Corruption("Model: truncated");
    std::istringstream ls(line);
    std::string tag;
    size_t bytes = 0;
    ls >> tag >> bytes;
    if (tag != "tokenindex" || !ls) {
      return Status::Corruption("Model: bad tokenindex line");
    }
    std::string index_text(bytes, '\0');
    is.read(index_text.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<size_t>(is.gcount()) != bytes) {
      return Status::Corruption("Model: truncated token index");
    }
    auto index = TokenIndex::Deserialize(index_text);
    if (!index.ok()) return index.status();
    out.token_index_ = std::move(index).ValueOrDie();
  }
  {
    if (!std::getline(is, line)) return Status::Corruption("Model: truncated");
    std::istringstream ls(line);
    std::string tag;
    size_t bytes = 0;
    ls >> tag >> bytes;
    if (tag != "patternindex" || !ls) {
      return Status::Corruption("Model: bad patternindex line");
    }
    std::string pattern_text(bytes, '\0');
    is.read(pattern_text.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<size_t>(is.gcount()) != bytes) {
      return Status::Corruption("Model: truncated pattern index");
    }
    auto pattern_index = PatternIndex::Deserialize(pattern_text);
    if (!pattern_index.ok()) return pattern_index.status();
    out.pattern_index_ = std::move(pattern_index).ValueOrDie();
  }
  out.Finalize();
  return out;
}

Status Model::Save(const std::string& path) const {
  return WriteStringToFile(path, EncodeModelSnapshot(*this));
}

Result<Model> Model::Load(const std::string& path) {
  return LoadModelFromFile(path, SnapshotValidation::kFull);
}

}  // namespace unidetect
