#include "learn/model_stack.h"

#include "util/logging.h"

namespace unidetect {

namespace {

std::vector<const TokenIndex*> TokenLayers(
    const std::vector<std::shared_ptr<const Model>>& layers) {
  std::vector<const TokenIndex*> out;
  out.reserve(layers.size());
  for (const auto& layer : layers) out.push_back(&layer->token_index());
  return out;
}

std::vector<const PatternIndex*> PatternLayers(
    const std::vector<std::shared_ptr<const Model>>& layers) {
  std::vector<const PatternIndex*> out;
  out.reserve(layers.size());
  for (const auto& layer : layers) out.push_back(&layer->pattern_index());
  return out;
}

}  // namespace

ModelStack::ModelStack(std::vector<std::shared_ptr<const Model>> layers)
    : layers_(std::move(layers)),
      token_prevalence_(TokenLayers(layers_)),
      pattern_prevalence_(PatternLayers(layers_)) {
  UNIDETECT_CHECK(!layers_.empty());
  for (const auto& layer : layers_) {
    UNIDETECT_CHECK(layer != nullptr);
    // Queries binary-search each layer's sorted store; a build-phase
    // layer would silently answer from the wrong container.
    UNIDETECT_CHECK(layer->finalized());
  }
}

ModelStack ModelStack::Borrow(const Model* model) {
  UNIDETECT_CHECK(model != nullptr);
  // Aliasing shared_ptr with an empty control block: non-owning, and
  // cheap to copy alongside the owned layers above it.
  return ModelStack({std::shared_ptr<const Model>(
      std::shared_ptr<const void>(), model)});
}

ModelStack ModelStack::WithDelta(std::shared_ptr<const Model> delta) const {
  std::vector<std::shared_ptr<const Model>> layers = layers_;
  layers.push_back(std::move(delta));
  return ModelStack(std::move(layers));
}

double ModelStack::LikelihoodRatio(ErrorClass cls, FeatureKey key,
                                   double theta1, double theta2) const {
  const SurpriseDirection dir = DirectionOf(cls);

  // Same early-out as the flat path: a perturbation that does not move
  // the metric toward "clean" carries no surprise.
  if (lr_internal::PerturbationNotCleaner(dir, theta1, theta2)) return 1.0;

  const ModelOptions& opts = options();
  uint64_t support = 0;
  uint64_t num = 0;
  uint64_t den = 0;
  bool found = false;
  for (const auto& layer : layers_) {
    const SubsetStats* stats = layer->FindSubset(key);
    if (stats == nullptr) continue;
    found = true;
    support += stats->size();
    lr_internal::AccumulateLrCounts(*stats, opts, dir, theta1, theta2, &num,
                                    &den);
  }
  // Gate order mirrors Model::LikelihoodRatio exactly; the counts
  // accumulated above are simply unused when a gate fires, so gating
  // after the single pass cannot change any answer.
  if (!found) return 1.0;
  if (support < opts.min_support) return 1.0;
  if (den < opts.min_support) return 1.0;

  return lr_internal::SmoothedLrFromCounts(num, den, opts);
}

uint64_t ModelStack::SubsetSupport(FeatureKey key) const {
  uint64_t total = 0;
  for (const auto& layer : layers_) total += layer->SubsetSupport(key);
  return total;
}

uint64_t ModelStack::num_observations() const {
  uint64_t total = 0;
  for (const auto& layer : layers_) total += layer->num_observations();
  return total;
}

}  // namespace unidetect
