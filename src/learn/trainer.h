// Trainer: the offline "learning" component of Section 2.2.3.
//
// Crunches the background corpus T in two passes — (1) token prevalence
// index, (2) per-class metric/perturbation observations — sharded across
// a thread pool, mirroring the paper's MapReduce-like jobs. The output is
// a finalized Model ready for online detection.

#pragma once

#include <cstddef>

#include "corpus/corpus.h"
#include "corpus/token_index.h"
#include "learn/model.h"
#include "table/table.h"

namespace unidetect {

/// \brief Records every error class's observation for one table into the
/// build-phase partial model `out`. `index` must be the token prevalence
/// index of the FULL corpus (featurization consults global prevalence),
/// not just the shard the table came from.
///
/// This is the single per-table observation step shared by
/// Trainer::Train's in-process pass 2 and the offline shard builder
/// (src/offline/shard_builder.h).
void AddTableObservations(const Table& table, const TokenIndex& index,
                          const ModelOptions& options, size_t max_fd_pairs,
                          Model* out);

/// \brief Training configuration.
struct TrainerOptions {
  ModelOptions model;
  /// Worker threads; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Ordered column pairs per table considered for FD statistics; tables
  /// wider than this contribute only the first pairs (quadratic blowup
  /// guard for wide enterprise sheets).
  size_t max_fd_pairs_per_table = 30;
};

/// \brief Builds a Model from a background corpus.
class Trainer {
 public:
  explicit Trainer(TrainerOptions options = {}) : options_(options) {}

  /// \brief Runs both passes over `corpus` and returns the trained model.
  Model Train(const Corpus& corpus) const;

 private:
  TrainerOptions options_;
};

}  // namespace unidetect
