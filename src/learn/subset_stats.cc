#include "learn/subset_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace unidetect {

size_t SubsetStats::TreeLevelsFor(size_t n) {
  if (n < kTreeMinSize) return 0;
  size_t levels = 0;
  for (size_t block = 2; block / 2 < n; block *= 2) ++levels;
  return levels;
}

void SubsetStats::Add(double pre, double post) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(!borrowed_);
  pres_owned_.push_back(static_cast<float>(pre));
  posts_owned_.push_back(static_cast<float>(post));
}

void SubsetStats::Finalize() {
  if (finalized_) return;
  std::vector<size_t> order(pres_owned_.size());
  std::iota(order.begin(), order.end(), 0);
  // Canonical (pre, post) order, not just pre order: breaking pre ties by
  // post makes the finalized arrays a pure function of the observation
  // *multiset*, so any shard count, thread count, or merge order yields
  // bit-identical Save() output (the offline pipeline's determinism
  // contract, DESIGN.md section 11).
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (pres_owned_[a] != pres_owned_[b]) return pres_owned_[a] < pres_owned_[b];
    return posts_owned_[a] < posts_owned_[b];
  });
  std::vector<float> pres(pres_owned_.size());
  std::vector<float> posts(posts_owned_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pres[i] = pres_owned_[order[i]];
    posts[i] = posts_owned_[order[i]];
  }
  pres_owned_ = std::move(pres);
  posts_owned_ = std::move(posts);
  BuildTree();
  finalized_ = true;
}

Result<SubsetStats> SubsetStats::FromSortedArrays(std::vector<float> pres,
                                                  std::vector<float> posts) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  if (!std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  SubsetStats out;
  out.pres_owned_ = std::move(pres);
  out.posts_owned_ = std::move(posts);
  out.BuildTree();
  out.finalized_ = true;
  return out;
}

Result<SubsetStats> SubsetStats::FromSortedArraysWithTree(
    std::vector<float> pres, std::vector<float> posts,
    std::vector<float> tree) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  if (!std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  const size_t levels = TreeLevelsFor(pres.size());
  if (tree.size() != levels * pres.size()) {
    return Status::Corruption("SubsetStats: tree size mismatch");
  }
  SubsetStats out;
  out.pres_owned_ = std::move(pres);
  out.posts_owned_ = std::move(posts);
  out.tree_owned_ = std::move(tree);
  out.tree_levels_ = levels;
  out.finalized_ = true;
  return out;
}

Result<SubsetStats> SubsetStats::FromBorrowedSorted(
    std::span<const float> pres, std::span<const float> posts,
    std::span<const float> tree, bool validate_sorted) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  const size_t levels = TreeLevelsFor(pres.size());
  if (tree.size() != levels * pres.size()) {
    return Status::Corruption("SubsetStats: tree size mismatch");
  }
  if (validate_sorted && !std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  SubsetStats out;
  out.pres_view_ = pres;
  out.posts_view_ = posts;
  out.tree_view_ = tree;
  out.tree_levels_ = levels;
  out.borrowed_ = true;
  out.finalized_ = true;
  return out;
}

uint64_t SubsetStats::OwnedBytes() const {
  return (pres_owned_.capacity() + posts_owned_.capacity() +
          tree_owned_.capacity()) *
         sizeof(float);
}

void SubsetStats::BuildTree() {
  // Build the merge-sort tree bottom-up into one flat buffer: level k
  // sorts posts within aligned blocks of 2^(k+1), ending with one fully
  // sorted block. Skipping entirely below kTreeMinSize means tiny
  // subsets never pay the allocation — on any load path.
  tree_owned_.clear();
  tree_levels_ = 0;
  const size_t n = posts_owned_.size();
  const size_t levels = TreeLevelsFor(n);
  if (levels == 0) return;
  tree_owned_.resize(levels * n);
  const float* prev = posts_owned_.data();
  size_t k = 0;
  for (size_t block = 2; block / 2 < n; block *= 2, ++k) {
    float* level = tree_owned_.data() + k * n;
    for (size_t start = 0; start < n; start += block) {
      const size_t mid = std::min(start + block / 2, n);
      const size_t end = std::min(start + block, n);
      std::merge(prev + start, prev + mid, prev + mid, prev + end,
                 level + start);
    }
    prev = level;
  }
  tree_levels_ = levels;
}

namespace {
// Index of the first element > theta (span sorted ascending).
size_t UpperBound(std::span<const float> v, double theta) {
  return static_cast<size_t>(
      std::upper_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
// Index of the first element >= theta.
size_t LowerBound(std::span<const float> v, double theta) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
}  // namespace

uint64_t SubsetStats::CountPostsInPrefix(size_t prefix_len, float theta,
                                         bool count_geq) const {
  // Binary block decomposition of the prefix: taking block sizes largest
  // first keeps `pos` a multiple of every block size still to come, so
  // each counted block is complete and aligned within its tree level.
  const std::span<const float> tree = tree_data();
  const std::span<const float> posts_span = posts();
  const size_t n = posts_span.size();
  uint64_t count = 0;
  size_t pos = 0;
  for (size_t k = tree_levels_; k-- > 0;) {
    const size_t block = size_t{1} << (k + 1);
    if (prefix_len - pos < block) continue;
    const float* begin = tree.data() + k * n + pos;
    const float* end = begin + block;
    if (count_geq) {
      count += static_cast<uint64_t>(end - std::lower_bound(begin, end, theta));
    } else {
      count += static_cast<uint64_t>(std::upper_bound(begin, end, theta) - begin);
    }
    pos += block;
  }
  if (pos < prefix_len) {  // at most one leaf-level element remains
    const float post = posts_span[pos];
    if (count_geq ? post >= theta : post <= theta) ++count;
  }
  return count;
}

uint64_t SubsetStats::CountSurprising(SurpriseDirection dir, double theta1,
                                      double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (tree_levels_ == 0) return CountSurprisingLinear(dir, theta1, theta2);
  const std::span<const float> pres_span = pres();
  const float t2 = static_cast<float>(theta2);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side):
    // a suffix of the pre-sorted order, counted as full-range minus prefix.
    const size_t begin = LowerBound(pres_span, theta1);
    return CountPostsInPrefix(pres_span.size(), t2, /*count_geq=*/false) -
           CountPostsInPrefix(begin, t2, /*count_geq=*/false);
  }
  // pre <= theta1 and post >= theta2: a prefix of the pre-sorted order.
  const size_t end = UpperBound(pres_span, theta1);
  return CountPostsInPrefix(end, t2, /*count_geq=*/true);
}

uint64_t SubsetStats::CountSurprisingLinear(SurpriseDirection dir,
                                            double theta1,
                                            double theta2) const {
  UNIDETECT_CHECK(finalized_);
  const std::span<const float> pres_span = pres();
  const std::span<const float> posts_span = posts();
  uint64_t count = 0;
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side).
    const size_t begin = LowerBound(pres_span, theta1);
    for (size_t i = begin; i < posts_span.size(); ++i) {
      if (posts_span[i] <= static_cast<float>(theta2)) ++count;
    }
  } else {
    // pre <= theta1 and post >= theta2.
    const size_t end = UpperBound(pres_span, theta1);
    for (size_t i = 0; i < end; ++i) {
      if (posts_span[i] >= static_cast<float>(theta2)) ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPreSuspiciousTail(SurpriseDirection dir,
                                             double theta2) const {
  UNIDETECT_CHECK(finalized_);
  const std::span<const float> pres_span = pres();
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return pres_span.size() - LowerBound(pres_span, theta2);  // pre >= theta2
  }
  return UpperBound(pres_span, theta2);  // pre <= theta2
}

uint64_t SubsetStats::CountPreCleanTail(SurpriseDirection dir,
                                        double theta2) const {
  UNIDETECT_CHECK(finalized_);
  const std::span<const float> pres_span = pres();
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return UpperBound(pres_span, theta2);  // pre <= theta2
  }
  return pres_span.size() - LowerBound(pres_span, theta2);  // pre >= theta2
}

namespace {
float Quantize(double v, double grid) {
  if (grid <= 0) return static_cast<float>(v);
  return static_cast<float>(std::round(v / grid) * grid);
}
}  // namespace

uint64_t SubsetStats::CountPointPair(double theta1, double theta2,
                                     double grid) const {
  UNIDETECT_CHECK(finalized_);
  const std::span<const float> pres_span = pres();
  const std::span<const float> posts_span = posts();
  const float q1 = Quantize(theta1, grid);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (size_t i = 0; i < pres_span.size(); ++i) {
    if (Quantize(pres_span[i], grid) == q1 &&
        Quantize(posts_span[i], grid) == q2) {
      ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPointPre(double theta2, double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (float pre : pres()) {
    if (Quantize(pre, grid) == q2) ++count;
  }
  return count;
}

void SubsetStats::Merge(const SubsetStats& other) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(!borrowed_);
  const std::span<const float> other_pres = other.pres();
  const std::span<const float> other_posts = other.posts();
  pres_owned_.insert(pres_owned_.end(), other_pres.begin(), other_pres.end());
  posts_owned_.insert(posts_owned_.end(), other_posts.begin(),
                      other_posts.end());
}

void SubsetStats::SerializeTo(std::string* out) const {
  std::ostringstream os;
  // max_digits10 makes the float -> text -> float round trip exact;
  // anything less shifts stored values across query boundaries (a column
  // with UR 10/13 must still compare equal to a queried theta of 10/13
  // after the model is saved and reloaded).
  os.precision(std::numeric_limits<float>::max_digits10);
  const std::span<const float> pres_span = pres();
  const std::span<const float> posts_span = posts();
  os << pres_span.size();
  for (size_t i = 0; i < pres_span.size(); ++i) {
    os << ' ' << pres_span[i] << ' ' << posts_span[i];
  }
  out->append(os.str());
}

Result<SubsetStats> SubsetStats::Deserialize(std::string_view text) {
  std::istringstream is{std::string(text)};
  size_t n = 0;
  if (!(is >> n)) return Status::Corruption("SubsetStats: missing count");
  SubsetStats out;
  out.pres_owned_.reserve(n);
  out.posts_owned_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    float pre = 0;
    float post = 0;
    if (!(is >> pre >> post)) {
      return Status::Corruption("SubsetStats: truncated pair list");
    }
    out.pres_owned_.push_back(pre);
    out.posts_owned_.push_back(post);
  }
  out.Finalize();
  return out;
}

}  // namespace unidetect
