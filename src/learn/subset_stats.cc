#include "learn/subset_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace unidetect {

void SubsetStats::Add(double pre, double post) {
  UNIDETECT_CHECK(!finalized_);
  pres_.push_back(static_cast<float>(pre));
  posts_.push_back(static_cast<float>(post));
}

void SubsetStats::Finalize() {
  if (finalized_) return;
  std::vector<size_t> order(pres_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return pres_[a] < pres_[b]; });
  std::vector<float> pres(pres_.size());
  std::vector<float> posts(posts_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pres[i] = pres_[order[i]];
    posts[i] = posts_[order[i]];
  }
  pres_ = std::move(pres);
  posts_ = std::move(posts);
  finalized_ = true;
}

namespace {
// Index of the first element > theta (pres_ sorted ascending).
size_t UpperBound(const std::vector<float>& v, double theta) {
  return static_cast<size_t>(
      std::upper_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
// Index of the first element >= theta.
size_t LowerBound(const std::vector<float>& v, double theta) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
}  // namespace

uint64_t SubsetStats::CountSurprising(SurpriseDirection dir, double theta1,
                                      double theta2) const {
  UNIDETECT_CHECK(finalized_);
  uint64_t count = 0;
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side).
    const size_t begin = LowerBound(pres_, theta1);
    for (size_t i = begin; i < posts_.size(); ++i) {
      if (posts_[i] <= static_cast<float>(theta2)) ++count;
    }
  } else {
    // pre <= theta1 and post >= theta2.
    const size_t end = UpperBound(pres_, theta1);
    for (size_t i = 0; i < end; ++i) {
      if (posts_[i] >= static_cast<float>(theta2)) ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPreSuspiciousTail(SurpriseDirection dir,
                                             double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return pres_.size() - LowerBound(pres_, theta2);  // pre >= theta2
  }
  return UpperBound(pres_, theta2);  // pre <= theta2
}

uint64_t SubsetStats::CountPreCleanTail(SurpriseDirection dir,
                                        double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return UpperBound(pres_, theta2);  // pre <= theta2
  }
  return pres_.size() - LowerBound(pres_, theta2);  // pre >= theta2
}

namespace {
float Quantize(double v, double grid) {
  if (grid <= 0) return static_cast<float>(v);
  return static_cast<float>(std::round(v / grid) * grid);
}
}  // namespace

uint64_t SubsetStats::CountPointPair(double theta1, double theta2,
                                     double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q1 = Quantize(theta1, grid);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (size_t i = 0; i < pres_.size(); ++i) {
    if (Quantize(pres_[i], grid) == q1 && Quantize(posts_[i], grid) == q2) {
      ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPointPre(double theta2, double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (float pre : pres_) {
    if (Quantize(pre, grid) == q2) ++count;
  }
  return count;
}

void SubsetStats::Merge(const SubsetStats& other) {
  UNIDETECT_CHECK(!finalized_);
  pres_.insert(pres_.end(), other.pres_.begin(), other.pres_.end());
  posts_.insert(posts_.end(), other.posts_.begin(), other.posts_.end());
}

void SubsetStats::SerializeTo(std::string* out) const {
  std::ostringstream os;
  // max_digits10 makes the float -> text -> float round trip exact;
  // anything less shifts stored values across query boundaries (a column
  // with UR 10/13 must still compare equal to a queried theta of 10/13
  // after the model is saved and reloaded).
  os.precision(std::numeric_limits<float>::max_digits10);
  os << pres_.size();
  for (size_t i = 0; i < pres_.size(); ++i) {
    os << ' ' << pres_[i] << ' ' << posts_[i];
  }
  out->append(os.str());
}

Result<SubsetStats> SubsetStats::Deserialize(std::string_view text) {
  std::istringstream is{std::string(text)};
  size_t n = 0;
  if (!(is >> n)) return Status::Corruption("SubsetStats: missing count");
  SubsetStats out;
  out.pres_.reserve(n);
  out.posts_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    float pre = 0;
    float post = 0;
    if (!(is >> pre >> post)) {
      return Status::Corruption("SubsetStats: truncated pair list");
    }
    out.pres_.push_back(pre);
    out.posts_.push_back(post);
  }
  out.Finalize();
  return out;
}

}  // namespace unidetect
