#include "learn/subset_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace unidetect {

void SubsetStats::Add(double pre, double post) {
  UNIDETECT_CHECK(!finalized_);
  pres_.push_back(static_cast<float>(pre));
  posts_.push_back(static_cast<float>(post));
}

namespace {
// Below this size the linear scan beats the tree (and the tree's memory
// overhead buys nothing); counts are identical either way.
constexpr size_t kTreeMinSize = 64;
}  // namespace

void SubsetStats::Finalize() {
  if (finalized_) return;
  std::vector<size_t> order(pres_.size());
  std::iota(order.begin(), order.end(), 0);
  // Canonical (pre, post) order, not just pre order: breaking pre ties by
  // post makes the finalized arrays a pure function of the observation
  // *multiset*, so any shard count, thread count, or merge order yields
  // bit-identical Save() output (the offline pipeline's determinism
  // contract, DESIGN.md section 11).
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (pres_[a] != pres_[b]) return pres_[a] < pres_[b];
    return posts_[a] < posts_[b];
  });
  std::vector<float> pres(pres_.size());
  std::vector<float> posts(posts_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pres[i] = pres_[order[i]];
    posts[i] = posts_[order[i]];
  }
  pres_ = std::move(pres);
  posts_ = std::move(posts);
  BuildTree();
  finalized_ = true;
}

Result<SubsetStats> SubsetStats::FromSortedArrays(std::vector<float> pres,
                                                  std::vector<float> posts) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  if (!std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  SubsetStats out;
  out.pres_ = std::move(pres);
  out.posts_ = std::move(posts);
  out.BuildTree();
  out.finalized_ = true;
  return out;
}

void SubsetStats::BuildTree() {
  // Build the merge-sort tree bottom-up: level k sorts posts_ within
  // aligned blocks of 2^(k+1), ending with one fully-sorted block.
  tree_.clear();
  const size_t n = posts_.size();
  if (n >= kTreeMinSize) {
    const std::vector<float>* prev = &posts_;
    for (size_t block = 2; block / 2 < n; block *= 2) {
      std::vector<float> level(n);
      for (size_t start = 0; start < n; start += block) {
        const size_t mid = std::min(start + block / 2, n);
        const size_t end = std::min(start + block, n);
        std::merge(prev->begin() + static_cast<std::ptrdiff_t>(start),
                   prev->begin() + static_cast<std::ptrdiff_t>(mid),
                   prev->begin() + static_cast<std::ptrdiff_t>(mid),
                   prev->begin() + static_cast<std::ptrdiff_t>(end),
                   level.begin() + static_cast<std::ptrdiff_t>(start));
      }
      tree_.push_back(std::move(level));
      prev = &tree_.back();
    }
  }
}

namespace {
// Index of the first element > theta (pres_ sorted ascending).
size_t UpperBound(const std::vector<float>& v, double theta) {
  return static_cast<size_t>(
      std::upper_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
// Index of the first element >= theta.
size_t LowerBound(const std::vector<float>& v, double theta) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
}  // namespace

uint64_t SubsetStats::CountPostsInPrefix(size_t prefix_len, float theta,
                                         bool count_geq) const {
  // Binary block decomposition of the prefix: taking block sizes largest
  // first keeps `pos` a multiple of every block size still to come, so
  // each counted block is complete and aligned within its tree level.
  uint64_t count = 0;
  size_t pos = 0;
  for (size_t k = tree_.size(); k-- > 0;) {
    const size_t block = size_t{1} << (k + 1);
    if (prefix_len - pos < block) continue;
    const auto begin = tree_[k].begin() + static_cast<std::ptrdiff_t>(pos);
    const auto end = begin + static_cast<std::ptrdiff_t>(block);
    if (count_geq) {
      count += static_cast<uint64_t>(end - std::lower_bound(begin, end, theta));
    } else {
      count += static_cast<uint64_t>(std::upper_bound(begin, end, theta) - begin);
    }
    pos += block;
  }
  if (pos < prefix_len) {  // at most one leaf-level element remains
    const float post = posts_[pos];
    if (count_geq ? post >= theta : post <= theta) ++count;
  }
  return count;
}

uint64_t SubsetStats::CountSurprising(SurpriseDirection dir, double theta1,
                                      double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (tree_.empty()) return CountSurprisingLinear(dir, theta1, theta2);
  const float t2 = static_cast<float>(theta2);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side):
    // a suffix of the pre-sorted order, counted as full-range minus prefix.
    const size_t begin = LowerBound(pres_, theta1);
    return CountPostsInPrefix(posts_.size(), t2, /*count_geq=*/false) -
           CountPostsInPrefix(begin, t2, /*count_geq=*/false);
  }
  // pre <= theta1 and post >= theta2: a prefix of the pre-sorted order.
  const size_t end = UpperBound(pres_, theta1);
  return CountPostsInPrefix(end, t2, /*count_geq=*/true);
}

uint64_t SubsetStats::CountSurprisingLinear(SurpriseDirection dir,
                                            double theta1,
                                            double theta2) const {
  UNIDETECT_CHECK(finalized_);
  uint64_t count = 0;
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side).
    const size_t begin = LowerBound(pres_, theta1);
    for (size_t i = begin; i < posts_.size(); ++i) {
      if (posts_[i] <= static_cast<float>(theta2)) ++count;
    }
  } else {
    // pre <= theta1 and post >= theta2.
    const size_t end = UpperBound(pres_, theta1);
    for (size_t i = 0; i < end; ++i) {
      if (posts_[i] >= static_cast<float>(theta2)) ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPreSuspiciousTail(SurpriseDirection dir,
                                             double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return pres_.size() - LowerBound(pres_, theta2);  // pre >= theta2
  }
  return UpperBound(pres_, theta2);  // pre <= theta2
}

uint64_t SubsetStats::CountPreCleanTail(SurpriseDirection dir,
                                        double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return UpperBound(pres_, theta2);  // pre <= theta2
  }
  return pres_.size() - LowerBound(pres_, theta2);  // pre >= theta2
}

namespace {
float Quantize(double v, double grid) {
  if (grid <= 0) return static_cast<float>(v);
  return static_cast<float>(std::round(v / grid) * grid);
}
}  // namespace

uint64_t SubsetStats::CountPointPair(double theta1, double theta2,
                                     double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q1 = Quantize(theta1, grid);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (size_t i = 0; i < pres_.size(); ++i) {
    if (Quantize(pres_[i], grid) == q1 && Quantize(posts_[i], grid) == q2) {
      ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPointPre(double theta2, double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (float pre : pres_) {
    if (Quantize(pre, grid) == q2) ++count;
  }
  return count;
}

void SubsetStats::Merge(const SubsetStats& other) {
  UNIDETECT_CHECK(!finalized_);
  pres_.insert(pres_.end(), other.pres_.begin(), other.pres_.end());
  posts_.insert(posts_.end(), other.posts_.begin(), other.posts_.end());
}

void SubsetStats::SerializeTo(std::string* out) const {
  std::ostringstream os;
  // max_digits10 makes the float -> text -> float round trip exact;
  // anything less shifts stored values across query boundaries (a column
  // with UR 10/13 must still compare equal to a queried theta of 10/13
  // after the model is saved and reloaded).
  os.precision(std::numeric_limits<float>::max_digits10);
  os << pres_.size();
  for (size_t i = 0; i < pres_.size(); ++i) {
    os << ' ' << pres_[i] << ' ' << posts_[i];
  }
  out->append(os.str());
}

Result<SubsetStats> SubsetStats::Deserialize(std::string_view text) {
  std::istringstream is{std::string(text)};
  size_t n = 0;
  if (!(is >> n)) return Status::Corruption("SubsetStats: missing count");
  SubsetStats out;
  out.pres_.reserve(n);
  out.posts_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    float pre = 0;
    float post = 0;
    if (!(is >> pre >> post)) {
      return Status::Corruption("SubsetStats: truncated pair list");
    }
    out.pres_.push_back(pre);
    out.posts_.push_back(post);
  }
  out.Finalize();
  return out;
}

}  // namespace unidetect
