#include "learn/subset_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/logging.h"
#include "util/simd.h"

namespace unidetect {

size_t SubsetStats::TreeLevelsFor(size_t n) {
  if (n < kTreeMinSize) return 0;
  size_t levels = 0;
  for (size_t block = 2; block / 2 < n; block *= 2) ++levels;
  return levels;
}

void SubsetStats::Add(double pre, double post) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(!borrowed_);
  pres_owned_.push_back(static_cast<float>(pre));
  posts_owned_.push_back(static_cast<float>(post));
}

void SubsetStats::Finalize() {
  if (finalized_) return;
  std::vector<size_t> order(pres_owned_.size());
  std::iota(order.begin(), order.end(), 0);
  // Canonical (pre, post) order, not just pre order: breaking pre ties by
  // post makes the finalized arrays a pure function of the observation
  // *multiset*, so any shard count, thread count, or merge order yields
  // bit-identical Save() output (the offline pipeline's determinism
  // contract, DESIGN.md section 11).
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (pres_owned_[a] != pres_owned_[b]) return pres_owned_[a] < pres_owned_[b];
    return posts_owned_[a] < posts_owned_[b];
  });
  std::vector<float> pres(pres_owned_.size());
  std::vector<float> posts(posts_owned_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pres[i] = pres_owned_[order[i]];
    posts[i] = posts_owned_[order[i]];
  }
  pres_owned_ = std::move(pres);
  posts_owned_ = std::move(posts);
  BuildTree();
  finalized_ = true;
}

Result<SubsetStats> SubsetStats::FromSortedArrays(std::vector<float> pres,
                                                  std::vector<float> posts) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  if (!std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  SubsetStats out;
  out.pres_owned_ = std::move(pres);
  out.posts_owned_ = std::move(posts);
  out.BuildTree();
  out.finalized_ = true;
  return out;
}

Result<SubsetStats> SubsetStats::FromSortedArraysWithTree(
    std::vector<float> pres, std::vector<float> posts,
    std::vector<float> tree) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  if (!std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  const size_t levels = TreeLevelsFor(pres.size());
  if (tree.size() != levels * pres.size()) {
    return Status::Corruption("SubsetStats: tree size mismatch");
  }
  SubsetStats out;
  out.pres_owned_ = std::move(pres);
  out.posts_owned_ = std::move(posts);
  out.tree_owned_ = std::move(tree);
  out.tree_levels_ = levels;
  out.finalized_ = true;
  return out;
}

Result<SubsetStats> SubsetStats::FromBorrowedSorted(
    std::span<const float> pres, std::span<const float> posts,
    std::span<const float> tree, bool validate_sorted) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  const size_t levels = TreeLevelsFor(pres.size());
  if (tree.size() != levels * pres.size()) {
    return Status::Corruption("SubsetStats: tree size mismatch");
  }
  if (validate_sorted && !std::is_sorted(pres.begin(), pres.end())) {
    return Status::Corruption("SubsetStats: pre values not sorted");
  }
  SubsetStats out;
  out.pres_view_ = pres;
  out.posts_view_ = posts;
  out.tree_view_ = tree;
  out.tree_levels_ = levels;
  out.borrowed_ = true;
  out.finalized_ = true;
  return out;
}

Result<SubsetStats> SubsetStats::FromSortedHalfArraysWithTree(
    std::vector<uint16_t> pres, std::vector<uint16_t> posts,
    std::vector<uint16_t> tree) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  if (!std::is_sorted(pres.begin(), pres.end(), [](uint16_t a, uint16_t b) {
        return simd::HalfToFloat(a) < simd::HalfToFloat(b);
      })) {
    return Status::Corruption("SubsetStats: f16 pre values not sorted");
  }
  const size_t levels = TreeLevelsFor(pres.size());
  if (tree.size() != levels * pres.size()) {
    return Status::Corruption("SubsetStats: f16 tree size mismatch");
  }
  SubsetStats out;
  out.pres_half_owned_ = std::move(pres);
  out.posts_half_owned_ = std::move(posts);
  out.tree_half_owned_ = std::move(tree);
  out.tree_levels_ = levels;
  out.half_ = true;
  out.finalized_ = true;
  return out;
}

Result<SubsetStats> SubsetStats::FromBorrowedSortedHalf(
    std::span<const uint16_t> pres, std::span<const uint16_t> posts,
    std::span<const uint16_t> tree, bool validate_sorted) {
  if (pres.size() != posts.size()) {
    return Status::Corruption("SubsetStats: pre/post array size mismatch");
  }
  const size_t levels = TreeLevelsFor(pres.size());
  if (tree.size() != levels * pres.size()) {
    return Status::Corruption("SubsetStats: f16 tree size mismatch");
  }
  if (validate_sorted &&
      !std::is_sorted(pres.begin(), pres.end(), [](uint16_t a, uint16_t b) {
        return simd::HalfToFloat(a) < simd::HalfToFloat(b);
      })) {
    return Status::Corruption("SubsetStats: f16 pre values not sorted");
  }
  SubsetStats out;
  out.pres_half_view_ = pres;
  out.posts_half_view_ = posts;
  out.tree_half_view_ = tree;
  out.tree_levels_ = levels;
  out.borrowed_ = true;
  out.half_ = true;
  out.finalized_ = true;
  return out;
}

uint64_t SubsetStats::OwnedBytes() const {
  return (pres_owned_.capacity() + posts_owned_.capacity() +
          tree_owned_.capacity()) *
             sizeof(float) +
         (pres_half_owned_.capacity() + posts_half_owned_.capacity() +
          tree_half_owned_.capacity()) *
             sizeof(uint16_t);
}

float SubsetStats::PreAt(size_t i) const {
  return half_ ? simd::HalfToFloat(pres_f16()[i]) : pres()[i];
}

float SubsetStats::PostAt(size_t i) const {
  return half_ ? simd::HalfToFloat(posts_f16()[i]) : posts()[i];
}

void SubsetStats::BuildTree() {
  // Build the merge-sort tree bottom-up into one flat buffer: level k
  // sorts posts within aligned blocks of 2^(k+1), ending with one fully
  // sorted block. Skipping entirely below kTreeMinSize means tiny
  // subsets never pay the allocation — on any load path.
  tree_owned_.clear();
  tree_levels_ = 0;
  const size_t n = posts_owned_.size();
  const size_t levels = TreeLevelsFor(n);
  if (levels == 0) return;
  tree_owned_.resize(levels * n);
  const float* prev = posts_owned_.data();
  size_t k = 0;
  for (size_t block = 2; block / 2 < n; block *= 2, ++k) {
    float* level = tree_owned_.data() + k * n;
    for (size_t start = 0; start < n; start += block) {
      const size_t mid = std::min(start + block / 2, n);
      const size_t end = std::min(start + block, n);
      std::merge(prev + start, prev + mid, prev + mid, prev + end,
                 level + start);
    }
    prev = level;
  }
  tree_levels_ = levels;
}

namespace {
// Index of the first element > theta (span sorted ascending).
size_t UpperBound(std::span<const float> v, double theta) {
  return static_cast<size_t>(
      std::upper_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
// Index of the first element >= theta.
size_t LowerBound(std::span<const float> v, double theta) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), static_cast<float>(theta)) -
      v.begin());
}
// f16 variants: the arrays hold binary16 bit patterns sorted by
// dequantized value, so the searches compare through HalfToFloat.
size_t UpperBoundHalf(std::span<const uint16_t> v, double theta) {
  const float t = static_cast<float>(theta);
  return static_cast<size_t>(
      std::upper_bound(v.begin(), v.end(), t,
                       [](float lhs, uint16_t rhs) {
                         return lhs < simd::HalfToFloat(rhs);
                       }) -
      v.begin());
}
size_t LowerBoundHalf(std::span<const uint16_t> v, double theta) {
  const float t = static_cast<float>(theta);
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), t,
                       [](uint16_t lhs, float rhs) {
                         return simd::HalfToFloat(lhs) < rhs;
                       }) -
      v.begin());
}
}  // namespace

size_t SubsetStats::LowerBoundPre(double theta) const {
  return half_ ? LowerBoundHalf(pres_f16(), theta) : LowerBound(pres(), theta);
}

size_t SubsetStats::UpperBoundPre(double theta) const {
  return half_ ? UpperBoundHalf(pres_f16(), theta) : UpperBound(pres(), theta);
}

uint64_t SubsetStats::CountPostsInPrefix(size_t prefix_len, float theta,
                                         bool count_geq) const {
  // Binary block decomposition of the prefix: taking block sizes largest
  // first keeps `pos` a multiple of every block size still to come, so
  // each counted block is complete and aligned within its tree level.
  // The decomposition stops at kSimdLeafBlock: below that, binary
  // searches on ever-smaller blocks cost more than one vector sweep over
  // the (< 2 * kSimdLeafBlock) leftover posts, which the SIMD counting
  // kernels answer with the same inclusive-bound semantics.
  const size_t n = size();
  uint64_t count = 0;
  size_t pos = 0;
  for (size_t k = tree_levels_; k-- > 0;) {
    const size_t block = size_t{1} << (k + 1);
    if (block <= kSimdLeafBlock) break;
    if (prefix_len - pos < block) continue;
    if (half_) {
      const uint16_t* begin = tree_data_f16().data() + k * n + pos;
      const uint16_t* end = begin + block;
      if (count_geq) {
        count += static_cast<uint64_t>(
            end - std::lower_bound(begin, end, theta,
                                   [](uint16_t lhs, float rhs) {
                                     return simd::HalfToFloat(lhs) < rhs;
                                   }));
      } else {
        count += static_cast<uint64_t>(
            std::upper_bound(begin, end, theta,
                             [](float lhs, uint16_t rhs) {
                               return lhs < simd::HalfToFloat(rhs);
                             }) -
            begin);
      }
    } else {
      const float* begin = tree_data().data() + k * n + pos;
      const float* end = begin + block;
      if (count_geq) {
        count +=
            static_cast<uint64_t>(end - std::lower_bound(begin, end, theta));
      } else {
        count +=
            static_cast<uint64_t>(std::upper_bound(begin, end, theta) - begin);
      }
    }
    pos += block;
  }
  if (pos < prefix_len) {
    const size_t rest = prefix_len - pos;
    if (half_) {
      const uint16_t* base = posts_f16().data() + pos;
      count += count_geq ? simd::CountGreaterEqualF16(base, rest, theta)
                         : simd::CountLessEqualF16(base, rest, theta);
    } else {
      const float* base = posts().data() + pos;
      count += count_geq ? simd::CountGreaterEqualF32(base, rest, theta)
                         : simd::CountLessEqualF32(base, rest, theta);
    }
  }
  return count;
}

uint64_t SubsetStats::CountSurprising(SurpriseDirection dir, double theta1,
                                      double theta2) const {
  UNIDETECT_CHECK(finalized_);
  // Comparisons against a NaN theta2 are uniformly false, so nothing
  // qualifies. The SIMD sweeps get this right lane by lane, but the
  // binary-search block counting below would misclassify whole blocks
  // (NaN is unordered, so lower_bound/upper_bound land at an arbitrary
  // edge); short-circuit to match the linear reference exactly.
  if (std::isnan(theta2)) return 0;
  // With no tree (subsets below kTreeMinSize) the whole query is one
  // bounded SIMD sweep over posts; CountPostsInPrefix degenerates to
  // exactly that when tree_levels_ is 0, so both shapes share it.
  const float t2 = static_cast<float>(theta2);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side):
    // a suffix of the pre-sorted order, counted as full-range minus prefix.
    const size_t begin = LowerBoundPre(theta1);
    if (tree_levels_ == 0) {
      // No tree: one direct sweep over the suffix instead of two prefix
      // counts. Each element sees the same predicate either way.
      const size_t rest = size() - begin;
      return half_ ? simd::CountLessEqualF16(posts_f16().data() + begin, rest,
                                             t2)
                   : simd::CountLessEqualF32(posts().data() + begin, rest, t2);
    }
    return CountPostsInPrefix(size(), t2, /*count_geq=*/false) -
           CountPostsInPrefix(begin, t2, /*count_geq=*/false);
  }
  // pre <= theta1 and post >= theta2: a prefix of the pre-sorted order.
  const size_t end = UpperBoundPre(theta1);
  return CountPostsInPrefix(end, t2, /*count_geq=*/true);
}

uint64_t SubsetStats::CountSurprisingLinear(SurpriseDirection dir,
                                            double theta1,
                                            double theta2) const {
  UNIDETECT_CHECK(finalized_);
  // Reference implementation: plain scalar loops, no SIMD, no tree.
  const size_t n = size();
  uint64_t count = 0;
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    // pre >= theta1 (suspicious side) and post <= theta2 (clean side).
    const size_t begin = LowerBoundPre(theta1);
    for (size_t i = begin; i < n; ++i) {
      if (PostAt(i) <= static_cast<float>(theta2)) ++count;
    }
  } else {
    // pre <= theta1 and post >= theta2.
    const size_t end = UpperBoundPre(theta1);
    for (size_t i = 0; i < end; ++i) {
      if (PostAt(i) >= static_cast<float>(theta2)) ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPreSuspiciousTail(SurpriseDirection dir,
                                             double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return size() - LowerBoundPre(theta2);  // pre >= theta2
  }
  return UpperBoundPre(theta2);  // pre <= theta2
}

uint64_t SubsetStats::CountPreCleanTail(SurpriseDirection dir,
                                        double theta2) const {
  UNIDETECT_CHECK(finalized_);
  if (dir == SurpriseDirection::kHigherMoreSurprising) {
    return UpperBoundPre(theta2);  // pre <= theta2
  }
  return size() - LowerBoundPre(theta2);  // pre >= theta2
}

namespace {
float Quantize(double v, double grid) {
  if (grid <= 0) return static_cast<float>(v);
  return static_cast<float>(std::round(v / grid) * grid);
}
}  // namespace

uint64_t SubsetStats::CountPointPair(double theta1, double theta2,
                                     double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q1 = Quantize(theta1, grid);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (Quantize(PreAt(i), grid) == q1 && Quantize(PostAt(i), grid) == q2) {
      ++count;
    }
  }
  return count;
}

uint64_t SubsetStats::CountPointPre(double theta2, double grid) const {
  UNIDETECT_CHECK(finalized_);
  const float q2 = Quantize(theta2, grid);
  uint64_t count = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (Quantize(PreAt(i), grid) == q2) ++count;
  }
  return count;
}

void SubsetStats::Merge(const SubsetStats& other) {
  UNIDETECT_CHECK(!finalized_);
  UNIDETECT_CHECK(!borrowed_);
  // Merging an f16 source dequantizes into the owned f32 build arrays:
  // the merge target is a trainer-side accumulator, and widening is
  // exact, so the merged multiset is the dequantized multiset.
  pres_owned_.reserve(pres_owned_.size() + other.size());
  posts_owned_.reserve(posts_owned_.size() + other.size());
  for (size_t i = 0; i < other.size(); ++i) {
    pres_owned_.push_back(other.PreAt(i));
    posts_owned_.push_back(other.PostAt(i));
  }
}

void SubsetStats::SerializeTo(std::string* out) const {
  std::ostringstream os;
  // max_digits10 makes the float -> text -> float round trip exact;
  // anything less shifts stored values across query boundaries (a column
  // with UR 10/13 must still compare equal to a queried theta of 10/13
  // after the model is saved and reloaded).
  os.precision(std::numeric_limits<float>::max_digits10);
  os << size();
  for (size_t i = 0; i < size(); ++i) {
    os << ' ' << PreAt(i) << ' ' << PostAt(i);
  }
  out->append(os.str());
}

Result<SubsetStats> SubsetStats::Deserialize(std::string_view text) {
  std::istringstream is{std::string(text)};
  size_t n = 0;
  if (!(is >> n)) return Status::Corruption("SubsetStats: missing count");
  SubsetStats out;
  out.pres_owned_.reserve(n);
  out.posts_owned_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    float pre = 0;
    float post = 0;
    if (!(is >> pre >> post)) {
      return Status::Corruption("SubsetStats: truncated pair list");
    }
    out.pres_owned_.push_back(pre);
    out.posts_owned_.push_back(post);
  }
  out.Finalize();
  return out;
}

}  // namespace unidetect
