#include "learn/trainer.h"

#include <vector>

#include "learn/candidates.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace unidetect {

void AddTableObservations(const Table& table, const TokenIndex& index,
                          const ModelOptions& options, size_t max_fd_pairs,
                          Model* out) {
  // One single-layer view up front; the extractors take the layered
  // TokenPrevalence interface (serving queries stacks, training always
  // featurizes against one full-corpus index).
  const TokenPrevalence prevalence(index);

  // Column-level classes.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);

    const OutlierCandidate outlier = ExtractOutlierCandidate(column, options);
    if (outlier.valid) {
      out->AddObservation(outlier.key, outlier.theta1, outlier.theta2);
    }

    const SpellingCandidate spelling =
        ExtractSpellingCandidate(column, options);
    if (spelling.valid) {
      out->AddObservation(spelling.key, spelling.theta1, spelling.theta2);
    }

    const UniquenessCandidate uniqueness =
        ExtractUniquenessCandidate(column, c, prevalence, options);
    if (uniqueness.valid) {
      out->AddObservation(uniqueness.key, uniqueness.theta1,
                          uniqueness.theta2);
    }
  }

  // FD pairs (ordered, distinct columns).
  size_t pairs = 0;
  for (size_t l = 0; l < table.num_columns() && pairs < max_fd_pairs; ++l) {
    for (size_t r = 0; r < table.num_columns() && pairs < max_fd_pairs; ++r) {
      if (l == r) continue;
      ++pairs;
      const FdCandidate fd = ExtractFdCandidate(table.column(l),
                                                table.column(r), prevalence,
                                                options);
      if (fd.valid) out->AddObservation(fd.key, fd.theta1, fd.theta2);
    }
  }
}

Model Trainer::Train(const Corpus& corpus) const {
  ThreadPool pool(options_.num_threads);
  const size_t n = corpus.tables.size();

  // Both passes reduce per-thread *partial models* with Model::Merge —
  // the same associative/commutative fold the offline shard pipeline
  // (src/offline/) applies to persisted shard snapshots, so the two
  // paths cannot drift.

  // Pass 1: token prevalence + pattern co-occurrence indexes.
  UNIDETECT_LOG(Info) << "training pass 1 (token index) over " << n
                      << " tables, " << pool.num_threads() << " threads";
  std::vector<Model> index_partials;
  index_partials.reserve(pool.num_threads());
  for (size_t i = 0; i < pool.num_threads(); ++i) {
    index_partials.emplace_back(options_.model);
  }
  ParallelFor(pool, n, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      index_partials[shard].mutable_token_index()->AddTable(corpus.tables[i]);
      index_partials[shard].mutable_pattern_index()->AddTable(
          corpus.tables[i]);
    }
  });
  Model model(options_.model);
  for (const Model& partial : index_partials) model.Merge(partial);

  // Pass 2: per-class observations against the full merged index.
  UNIDETECT_LOG(Info) << "training pass 2 (metric observations)";
  std::vector<Model> obs_partials;
  obs_partials.reserve(pool.num_threads());
  for (size_t i = 0; i < pool.num_threads(); ++i) {
    obs_partials.emplace_back(options_.model);
  }
  const TokenIndex& index = model.token_index();
  ParallelFor(pool, n, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      AddTableObservations(corpus.tables[i], index, options_.model,
                           options_.max_fd_pairs_per_table,
                           &obs_partials[shard]);
    }
  });
  for (const Model& partial : obs_partials) model.Merge(partial);

  model.Finalize();
  UNIDETECT_LOG(Info) << "trained model: " << model.num_subsets()
                      << " subsets, " << model.num_observations()
                      << " observations, " << model.token_index().num_tokens()
                      << " tokens";
  return model;
}

}  // namespace unidetect
