#include "learn/trainer.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "learn/candidates.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace unidetect {

namespace {

// Records every class's observation for one table into `shard`.
void CrunchTable(const Table& table, const TokenIndex& index,
                 const ModelOptions& options, size_t max_fd_pairs,
                 Model* shard) {
  // Column-level classes.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);

    const OutlierCandidate outlier = ExtractOutlierCandidate(column, options);
    if (outlier.valid) {
      shard->AddObservation(outlier.key, outlier.theta1, outlier.theta2);
    }

    const SpellingCandidate spelling =
        ExtractSpellingCandidate(column, options);
    if (spelling.valid) {
      shard->AddObservation(spelling.key, spelling.theta1, spelling.theta2);
    }

    const UniquenessCandidate uniqueness =
        ExtractUniquenessCandidate(column, c, index, options);
    if (uniqueness.valid) {
      shard->AddObservation(uniqueness.key, uniqueness.theta1,
                            uniqueness.theta2);
    }
  }

  // FD pairs (ordered, distinct columns).
  size_t pairs = 0;
  for (size_t l = 0; l < table.num_columns() && pairs < max_fd_pairs; ++l) {
    for (size_t r = 0; r < table.num_columns() && pairs < max_fd_pairs; ++r) {
      if (l == r) continue;
      ++pairs;
      const FdCandidate fd =
          ExtractFdCandidate(table.column(l), table.column(r), index, options);
      if (fd.valid) shard->AddObservation(fd.key, fd.theta1, fd.theta2);
    }
  }
}

}  // namespace

Model Trainer::Train(const Corpus& corpus) const {
  ThreadPool pool(options_.num_threads);
  const size_t n = corpus.tables.size();

  // Pass 1: token prevalence index.
  UNIDETECT_LOG(Info) << "training pass 1 (token index) over " << n
                      << " tables, " << pool.num_threads() << " threads";
  std::vector<TokenIndex> index_shards(pool.num_threads());
  std::vector<PatternIndex> pattern_shards(pool.num_threads());
  ParallelFor(pool, n, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      index_shards[shard].AddTable(corpus.tables[i]);
      pattern_shards[shard].AddTable(corpus.tables[i]);
    }
  });
  Model model(options_.model);
  for (const auto& shard : index_shards) {
    model.mutable_token_index()->Merge(shard);
  }
  for (const auto& shard : pattern_shards) {
    model.mutable_pattern_index()->Merge(shard);
  }

  // Pass 2: per-class observations.
  UNIDETECT_LOG(Info) << "training pass 2 (metric observations)";
  std::vector<Model> model_shards;
  model_shards.reserve(pool.num_threads());
  for (size_t i = 0; i < pool.num_threads(); ++i) {
    model_shards.emplace_back(options_.model);
  }
  const TokenIndex& index = model.token_index();
  ParallelFor(pool, n, [&](size_t shard, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      CrunchTable(corpus.tables[i], index, options_.model,
                  options_.max_fd_pairs_per_table, &model_shards[shard]);
    }
  });
  for (const auto& shard : model_shards) model.MergeObservations(shard);

  model.Finalize();
  UNIDETECT_LOG(Info) << "trained model: " << model.num_subsets()
                      << " subsets, " << model.num_observations()
                      << " observations, " << model.token_index().num_tokens()
                      << " tokens";
  return model;
}

}  // namespace unidetect
