// SubsetStats: the materialized evidence for one corpus subset S_D^F(T).
//
// During offline learning, every corpus column contributes one
// (theta1, theta2) = (m(D), m(D_O^P)) observation to the subset its
// feature key selects. Online, the smoothed likelihood ratio of Eq. 12 is
// two counting queries over these observations.
//
// Storage model (DESIGN.md section 12): every query runs over
// span<const float> views. In the trainer / v1-decode path the spans
// point at vectors the object owns; in the UDSNAP v2 mmap path they
// borrow directly from the mapped snapshot (the Model's backing region
// keeps the mapping alive), so loading a subset allocates nothing and
// touches no observation bytes until a query faults the pages in.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace unidetect {

/// \brief Which metric tail counts as "more suspicious".
///
/// max-MAD is suspicious when large (kHigherMoreSurprising); MPD, UR and
/// FR are suspicious when small (kLowerMoreSurprising) — a tiny MPD means
/// a near-duplicate pair, a UR/FR just under 1 means a near-constraint.
enum class SurpriseDirection : int {
  kHigherMoreSurprising = 0,
  kLowerMoreSurprising = 1,
};

/// \brief Immutable-after-Finalize store of (pre, post) metric pairs.
class SubsetStats {
 public:
  /// Below this size the linear scan beats the merge-sort tree (and the
  /// tree's memory overhead buys nothing); counts are identical either
  /// way. Neither Finalize() nor the snapshot writer materializes a tree
  /// for subsets smaller than this.
  static constexpr size_t kTreeMinSize = 64;

  /// Tree blocks at or below this size are not binary-searched during a
  /// prefix count: the block decomposition stops here and the remaining
  /// (< 2 * kSimdLeafBlock) observations are counted with one SIMD scan
  /// over the contiguous posts array (util/simd.h). Query results are
  /// unchanged — only the leaf strategy differs.
  static constexpr size_t kSimdLeafBlock = 64;

  /// \brief Number of merge-sort-tree levels Finalize() builds for a
  /// subset of `n` observations (0 below kTreeMinSize). Part of the v2
  /// wire contract: the serialized tree section holds exactly
  /// TreeLevelsFor(n) * n floats per subset.
  static size_t TreeLevelsFor(size_t n);

  /// \brief Adds one observation (build phase only).
  void Add(double pre, double post);

  /// \brief Sorts observations; must be called before any query.
  void Finalize();

  size_t size() const {
    if (half_) {
      return borrowed_ ? pres_half_view_.size() : pres_half_owned_.size();
    }
    return borrowed_ ? pres_view_.size() : pres_owned_.size();
  }
  bool finalized() const { return finalized_; }

  /// \brief True when observation storage borrows from an external
  /// buffer (a mapped v2 snapshot) instead of owned vectors.
  bool borrowed() const { return borrowed_; }

  /// \brief True when observations are stored as IEEE 754 binary16 bit
  /// patterns (the f16 snapshot variant, DESIGN.md §13). Queries run
  /// over the dequantized values — widening to f32 is exact, so counts
  /// and bounds match an f32 store holding the same dequantized array.
  bool half() const { return half_; }

  /// \brief Heap bytes owned by this object (0 for borrowed storage);
  /// feeds the serving tier's model_resident_bytes gauge.
  uint64_t OwnedBytes() const;

  /// \brief Numerator of Eq. 12: observations at least as surprising as
  /// (theta1, theta2) — pre on theta1's suspicious side AND post on
  /// theta2's clean side. Bounds are inclusive.
  ///
  /// Answered as a 2-D dominance count over the merge-sort tree built at
  /// Finalize(): O(log^2 n) instead of the O(n) scan of
  /// CountSurprisingLinear (which remains the reference implementation).
  uint64_t CountSurprising(SurpriseDirection dir, double theta1,
                           double theta2) const;

  /// \brief Reference linear-scan implementation of CountSurprising.
  /// Exact same counting semantics; kept for property tests, the perf
  /// smoke check, and as the fast path for tiny subsets.
  uint64_t CountSurprisingLinear(SurpriseDirection dir, double theta1,
                                 double theta2) const;

  /// \brief Denominator of Eq. 12 in the paper's formulation: pre values
  /// on the suspicious side of theta2 (inclusive).
  uint64_t CountPreSuspiciousTail(SurpriseDirection dir, double theta2) const;

  /// \brief Ablation denominator: pre values on the clean side of theta2.
  uint64_t CountPreCleanTail(SurpriseDirection dir, double theta2) const;

  /// \brief Point-estimate (unsmoothed) numerator/denominator for the
  /// smoothing ablation: equality after quantization to `grid` steps.
  uint64_t CountPointPair(double theta1, double theta2, double grid) const;
  uint64_t CountPointPre(double theta2, double grid) const;

  /// \brief Merges another (non-finalized or finalized) stats object.
  void Merge(const SubsetStats& other);

  /// \brief Finalized observation arrays in canonical (pre, post) order;
  /// consumed by the snapshot codecs (model_format/). Empty in half()
  /// mode — codecs must branch to the *_f16() accessors there.
  std::span<const float> pres() const {
    return borrowed_ ? pres_view_ : std::span<const float>(pres_owned_);
  }
  std::span<const float> posts() const {
    return borrowed_ ? posts_view_ : std::span<const float>(posts_owned_);
  }

  /// \brief The merge-sort tree as one flat array: tree_levels() levels
  /// of size() floats each, level k holding posts sorted within aligned
  /// blocks of 2^(k+1). Empty below kTreeMinSize. The v2 writer
  /// serializes this verbatim so Finalize() never runs at load time.
  std::span<const float> tree_data() const {
    return borrowed_ ? tree_view_ : std::span<const float>(tree_owned_);
  }
  size_t tree_levels() const { return tree_levels_; }

  /// \brief Half-precision counterparts of pres()/posts()/tree_data(),
  /// non-empty only in half() mode. The v2 writer serializes these
  /// verbatim into the f16 sections, so an f16 load -> save round trip
  /// is bit-identical.
  std::span<const uint16_t> pres_f16() const {
    return borrowed_ ? pres_half_view_
                     : std::span<const uint16_t>(pres_half_owned_);
  }
  std::span<const uint16_t> posts_f16() const {
    return borrowed_ ? posts_half_view_
                     : std::span<const uint16_t>(posts_half_owned_);
  }
  std::span<const uint16_t> tree_data_f16() const {
    return borrowed_ ? tree_half_view_
                     : std::span<const uint16_t>(tree_half_owned_);
  }

  /// \brief Observation values at index i of the canonical order,
  /// dequantized when half(). For codec/serialization walks; queries use
  /// the batched span paths.
  float PreAt(size_t i) const;
  float PostAt(size_t i) const;

  /// \brief Rebuilds a finalized stats object from arrays already in
  /// pre-sorted order (the v1 snapshot payload). Rejects unsorted or
  /// size-mismatched input as Corruption: re-sorting here could reorder
  /// posts among tied pres and break the bit-identical
  /// Save -> Load -> Save guarantee. Rebuilds the tree (v1 files do not
  /// carry one).
  static Result<SubsetStats> FromSortedArrays(std::vector<float> pres,
                                              std::vector<float> posts);

  /// \brief Owned variant of the v2 decode path: installs a
  /// pre-serialized flat tree instead of rebuilding it, so load never
  /// re-runs the Finalize() sort/merge work. `tree` must hold exactly
  /// TreeLevelsFor(pres.size()) * pres.size() floats.
  static Result<SubsetStats> FromSortedArraysWithTree(
      std::vector<float> pres, std::vector<float> posts,
      std::vector<float> tree);

  /// \brief Zero-copy v2 decode path: observation and tree storage stay
  /// in the caller's buffer (a mapped snapshot section). The caller
  /// guarantees the buffer outlives the object — in practice via the
  /// owning Model's backing region. `validate_sorted` controls the O(n)
  /// pre-order check (on for full snapshot validation, skipped in the
  /// deferred serving mode whose structural checks are O(#subsets)).
  static Result<SubsetStats> FromBorrowedSorted(std::span<const float> pres,
                                                std::span<const float> posts,
                                                std::span<const float> tree,
                                                bool validate_sorted);

  /// \brief Half-precision decode paths (the f16 v2 section variant).
  /// Arrays hold binary16 bit patterns; "sorted" means sorted by
  /// dequantized value. Same tree-size contract as the f32 factories.
  static Result<SubsetStats> FromSortedHalfArraysWithTree(
      std::vector<uint16_t> pres, std::vector<uint16_t> posts,
      std::vector<uint16_t> tree);
  static Result<SubsetStats> FromBorrowedSortedHalf(
      std::span<const uint16_t> pres, std::span<const uint16_t> posts,
      std::span<const uint16_t> tree, bool validate_sorted);

  /// \brief Text serialization: "n pre1 post1 pre2 post2 ...".
  void SerializeTo(std::string* out) const;
  static Result<SubsetStats> Deserialize(std::string_view text);

 private:
  /// Builds the flat merge-sort tree over posts (pres must be sorted).
  void BuildTree();

  /// Counts posts on the given side of `theta` (inclusive) within the
  /// prefix [0, prefix_len) of the pre-sorted observation order: binary
  /// block decomposition over the tree levels down to kSimdLeafBlock,
  /// then one SIMD scan over the leftover posts.
  uint64_t CountPostsInPrefix(size_t prefix_len, float theta,
                              bool count_geq) const;

  /// Binary-search bounds over the (dequantized, when half) pre array.
  size_t LowerBoundPre(double theta) const;
  size_t UpperBoundPre(double theta) const;

  // Parallel arrays sorted by (pre, post) after Finalize(). Owned
  // storage is used by the build/trainer/v1 paths; the *_view_ spans are
  // populated only in borrowed mode; the *_half_* fields replace their
  // f32 counterparts in half mode.
  std::vector<float> pres_owned_;
  std::vector<float> posts_owned_;
  // Flat merge-sort tree over posts in pre-sorted order, built by
  // Finalize() for subsets of at least kTreeMinSize observations:
  // tree_levels_ levels of size() floats each (~n log n floats total,
  // O(n log n) build), one allocation.
  std::vector<float> tree_owned_;
  std::span<const float> pres_view_;
  std::span<const float> posts_view_;
  std::span<const float> tree_view_;
  std::vector<uint16_t> pres_half_owned_;
  std::vector<uint16_t> posts_half_owned_;
  std::vector<uint16_t> tree_half_owned_;
  std::span<const uint16_t> pres_half_view_;
  std::span<const uint16_t> posts_half_view_;
  std::span<const uint16_t> tree_half_view_;
  size_t tree_levels_ = 0;
  bool borrowed_ = false;
  bool finalized_ = false;
  bool half_ = false;
};

}  // namespace unidetect
