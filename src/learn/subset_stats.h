// SubsetStats: the materialized evidence for one corpus subset S_D^F(T).
//
// During offline learning, every corpus column contributes one
// (theta1, theta2) = (m(D), m(D_O^P)) observation to the subset its
// feature key selects. Online, the smoothed likelihood ratio of Eq. 12 is
// two counting queries over these observations.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace unidetect {

/// \brief Which metric tail counts as "more suspicious".
///
/// max-MAD is suspicious when large (kHigherMoreSurprising); MPD, UR and
/// FR are suspicious when small (kLowerMoreSurprising) — a tiny MPD means
/// a near-duplicate pair, a UR/FR just under 1 means a near-constraint.
enum class SurpriseDirection : int {
  kHigherMoreSurprising = 0,
  kLowerMoreSurprising = 1,
};

/// \brief Immutable-after-Finalize store of (pre, post) metric pairs.
class SubsetStats {
 public:
  /// \brief Adds one observation (build phase only).
  void Add(double pre, double post);

  /// \brief Sorts observations; must be called before any query.
  void Finalize();

  size_t size() const { return pres_.size(); }
  bool finalized() const { return finalized_; }

  /// \brief Numerator of Eq. 12: observations at least as surprising as
  /// (theta1, theta2) — pre on theta1's suspicious side AND post on
  /// theta2's clean side. Bounds are inclusive.
  ///
  /// Answered as a 2-D dominance count over the merge-sort tree built at
  /// Finalize(): O(log^2 n) instead of the O(n) scan of
  /// CountSurprisingLinear (which remains the reference implementation).
  uint64_t CountSurprising(SurpriseDirection dir, double theta1,
                           double theta2) const;

  /// \brief Reference linear-scan implementation of CountSurprising.
  /// Exact same counting semantics; kept for property tests, the perf
  /// smoke check, and as the fast path for tiny subsets.
  uint64_t CountSurprisingLinear(SurpriseDirection dir, double theta1,
                                 double theta2) const;

  /// \brief Denominator of Eq. 12 in the paper's formulation: pre values
  /// on the suspicious side of theta2 (inclusive).
  uint64_t CountPreSuspiciousTail(SurpriseDirection dir, double theta2) const;

  /// \brief Ablation denominator: pre values on the clean side of theta2.
  uint64_t CountPreCleanTail(SurpriseDirection dir, double theta2) const;

  /// \brief Point-estimate (unsmoothed) numerator/denominator for the
  /// smoothing ablation: equality after quantization to `grid` steps.
  uint64_t CountPointPair(double theta1, double theta2, double grid) const;
  uint64_t CountPointPre(double theta2, double grid) const;

  /// \brief Merges another (non-finalized or finalized) stats object.
  void Merge(const SubsetStats& other);

  /// \brief Finalized observation arrays in pre-sorted order; consumed
  /// by the binary snapshot codec (model_format/model_snapshot.cc).
  const std::vector<float>& pres() const { return pres_; }
  const std::vector<float>& posts() const { return posts_; }

  /// \brief Rebuilds a finalized stats object from arrays already in
  /// pre-sorted order (the binary snapshot payload). Rejects unsorted or
  /// size-mismatched input as Corruption: re-sorting here could reorder
  /// posts among tied pres and break the bit-identical
  /// Save -> Load -> Save guarantee.
  static Result<SubsetStats> FromSortedArrays(std::vector<float> pres,
                                              std::vector<float> posts);

  /// \brief Text serialization: "n pre1 post1 pre2 post2 ...".
  void SerializeTo(std::string* out) const;
  static Result<SubsetStats> Deserialize(std::string_view text);

 private:
  /// Builds the merge-sort tree over posts_ (pres_ must be sorted).
  void BuildTree();

  /// Counts posts on the given side of `theta` (inclusive) within the
  /// prefix [0, prefix_len) of the pre-sorted observation order.
  uint64_t CountPostsInPrefix(size_t prefix_len, float theta,
                              bool count_geq) const;

  // Parallel arrays sorted by pre after Finalize().
  std::vector<float> pres_;
  std::vector<float> posts_;
  // Merge-sort tree over posts_ in pre-sorted order, built by Finalize()
  // for subsets of at least kTreeMinSize observations. tree_[k] holds
  // posts_ sorted within aligned blocks of 2^(k+1) elements; the top
  // level is one fully-sorted block. ~n log n floats, O(n log n) build.
  std::vector<std::vector<float>> tree_;
  bool finalized_ = false;
};

}  // namespace unidetect
