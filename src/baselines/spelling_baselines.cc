#include "baselines/spelling_baselines.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "metrics/edit_distance.h"
#include "metrics/metric_functions.h"
#include "util/string_util.h"

namespace unidetect {

// ---------------------------------------------------------------------------
// Fuzzy-Cluster.

void FuzzyClusterBaseline::Detect(const Table& table,
                                  std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    const ColumnType type = column.type();
    if (type == ColumnType::kInteger || type == ColumnType::kFloat ||
        type == ColumnType::kDate) {
      continue;
    }
    // Distinct values with their first rows.
    std::vector<std::pair<std::string_view, size_t>> values;
    std::unordered_map<std::string_view, size_t> seen;
    for (size_t row = 0; row < column.size(); ++row) {
      std::string_view cell = Trim(column.cell(row));
      if (cell.empty()) continue;
      if (seen.emplace(cell, row).second) values.emplace_back(cell, row);
      if (values.size() > 300) break;
    }
    if (values.size() < 3) continue;

    struct ClosePair {
      size_t dist;
      double diff_len;
      size_t i;
      size_t j;
    };
    std::vector<ClosePair> pairs;
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = i + 1; j < values.size(); ++j) {
        const size_t d = BoundedEditDistance(values[i].first, values[j].first,
                                             max_distance_);
        if (d > max_distance_) continue;
        // Differing-token length: longer differing tokens rank earlier
        // ("mississipi" beats "mark"/"mary"), per Section 4.2.
        double diff_len = 0.0;
        {
          auto ta = TokenizeCell(values[i].first);
          auto tb = TokenizeCell(values[j].first);
          std::unordered_map<std::string, int> counts;
          for (auto& t : ta) counts[t]++;
          for (auto& t : tb) counts[t]--;
          size_t n = 0;
          for (auto& [token, count] : counts) {
            if (count == 0) continue;
            diff_len += static_cast<double>(token.size() * std::abs(count));
            n += static_cast<size_t>(std::abs(count));
          }
          if (n > 0) diff_len /= static_cast<double>(n);
        }
        pairs.push_back({d, diff_len, i, j});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const ClosePair& a, const ClosePair& b) {
                if (a.dist != b.dist) return a.dist < b.dist;
                return a.diff_len > b.diff_len;
              });
    const size_t keep = std::min(pairs.size(), max_pairs_per_column_);
    for (size_t p = 0; p < keep; ++p) {
      const ClosePair& pair = pairs[p];
      Finding finding;
      finding.error_class = ErrorClass::kSpelling;
      finding.table_name = table.name();
      finding.column = c;
      finding.rows = {values[pair.i].second, values[pair.j].second};
      finding.value = std::string(values[pair.i].first) + " | " +
                      std::string(values[pair.j].first);
      // Rank key: distance first, then longer differing tokens.
      finding.score = static_cast<double>(pair.dist) -
                      std::min(pair.diff_len, 50.0) / 100.0;
      std::ostringstream os;
      os << "edit distance " << pair.dist << ", differing-token length "
         << pair.diff_len;
      finding.explanation = os.str();
      out->push_back(std::move(finding));
    }
  }
}

// ---------------------------------------------------------------------------
// WordFrequency dictionary.

namespace {
bool IsAlphaWord(std::string_view token) {
  if (token.size() < 3) return false;
  for (char ch : token) {
    if (!std::isalpha(static_cast<unsigned char>(ch))) return false;
  }
  return true;
}
}  // namespace

WordFrequency::WordFrequency(const TokenIndex& index) {
  index.ForEachToken([&](std::string_view token, uint64_t count) {
    if (IsAlphaWord(token)) counts_.emplace(std::string(token), count);
  });
}

uint64_t WordFrequency::Count(std::string_view word) const {
  auto it = counts_.find(ToLower(word));
  return it == counts_.end() ? 0 : it->second;
}

std::string WordFrequency::BestCorrection(std::string_view raw,
                                          uint64_t min_count) const {
  // Edit-1 enumeration is O(len * 26) candidate strings; nothing longer
  // than a real word is worth correcting (and a megabyte cell must not
  // turn into gigabytes of candidates).
  if (raw.size() > 24) return "";
  const std::string word = ToLower(raw);
  std::string best;
  uint64_t best_count = min_count - 1;
  auto consider = [&](const std::string& candidate) {
    if (candidate == word) return;
    auto it = counts_.find(candidate);
    if (it != counts_.end() && it->second > best_count) {
      best_count = it->second;
      best = candidate;
    }
  };
  // All edit-distance-1 variants: deletions, transpositions,
  // substitutions, insertions (the classic Norvig enumeration).
  for (size_t i = 0; i < word.size(); ++i) {
    std::string del = word;
    del.erase(i, 1);
    consider(del);
    if (i + 1 < word.size() && word[i] != word[i + 1]) {
      std::string tr = word;
      std::swap(tr[i], tr[i + 1]);
      consider(tr);
    }
    for (char ch = 'a'; ch <= 'z'; ++ch) {
      if (ch != word[i]) {
        std::string sub = word;
        sub[i] = ch;
        consider(sub);
      }
      std::string ins = word;
      ins.insert(i, 1, ch);
      consider(ins);
    }
  }
  for (char ch = 'a'; ch <= 'z'; ++ch) {
    consider(word + ch);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Speller.

namespace {
bool IsAddressColumn(const std::string& name) {
  const std::string lower = ToLower(name);
  return lower.find("address") != std::string::npos ||
         lower.find("city") != std::string::npos ||
         lower.find("location") != std::string::npos ||
         lower.find("hometown") != std::string::npos;
}
}  // namespace

void SpellerBaseline::Detect(const Table& table,
                             std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (options_.address_only && !IsAddressColumn(column.name())) continue;
    const ColumnType type = column.type();
    if (type == ColumnType::kInteger || type == ColumnType::kFloat ||
        type == ColumnType::kDate) {
      continue;
    }
    for (size_t row = 0; row < column.size(); ++row) {
      for (const auto& token : TokenizeCell(column.cell(row))) {
        if (!IsAlphaWord(token) || token.size() < 4 || token.size() > 24) {
          continue;
        }
        const uint64_t count = frequency_->Count(token);
        if (count > options_.max_token_count) continue;
        const std::string correction =
            frequency_->BestCorrection(token, options_.min_correction_count);
        if (correction.empty()) continue;
        Finding finding;
        finding.error_class = ErrorClass::kSpelling;
        finding.table_name = table.name();
        finding.column = c;
        finding.rows = {row};
        finding.value = column.cell(row);
        // Commercial spellers return a correction without a usable
        // cross-query confidence ordering: a rewrite toward a popular
        // word ("GAIL" -> "GMAIL", "Tulia" -> "Trulia" in Figure 3)
        // looks exactly as confident as a genuine fix. All findings
        // share one score; SortFindings' positional tie-break keeps
        // runs deterministic.
        finding.score = -1.0;
        finding.explanation =
            "'" + token + "' -> '" + correction + "' (corpus frequency " +
            std::to_string(frequency_->Count(correction)) + " vs " +
            std::to_string(count) + ")";
        out->push_back(std::move(finding));
        break;  // one prediction per cell
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OOV (Word2Vec / GloVe stand-ins).

void OovBaseline::Detect(const Table& table, std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    const ColumnType type = column.type();
    if (type == ColumnType::kInteger || type == ColumnType::kFloat ||
        type == ColumnType::kDate) {
      continue;
    }
    for (size_t row = 0; row < column.size(); ++row) {
      for (const auto& token : TokenizeCell(column.cell(row))) {
        if (!IsAlphaWord(token) || token.size() < 4) continue;
        if (index_->TableCount(token) >= vocabulary_min_count_) continue;
        Finding finding;
        finding.error_class = ErrorClass::kSpelling;
        finding.table_name = table.name();
        finding.column = c;
        finding.rows = {row};
        finding.value = column.cell(row);
        // Longer OOV tokens first — the only signal available to a pure
        // vocabulary-membership predictor.
        finding.score = -static_cast<double>(token.size());
        finding.explanation = "'" + token + "' is out of vocabulary";
        out->push_back(std::move(finding));
        break;
      }
    }
  }
}

}  // namespace unidetect
