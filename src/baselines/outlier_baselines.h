// Numeric-outlier baselines of Section 4.2:
//
//   Max-MAD [48] -- most outlying value by MAD score (robust statistics)
//   Max-SD [20]  -- most outlying value by standard-deviation score
//   DBOD [57]    -- distance-based outlier score on the sorted extremes
//   LOF [24]     -- local outlier factor (k-NN local density)

#pragma once

#include "baselines/baseline.h"

namespace unidetect {

/// \brief Ranks columns' most outlying values by MAD score.
class MaxMadBaseline : public Baseline {
 public:
  std::string name() const override { return "Max-MAD"; }
  ErrorClass error_class() const override { return ErrorClass::kOutlier; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;
};

/// \brief Ranks columns' most outlying values by SD score.
class MaxSdBaseline : public Baseline {
 public:
  std::string name() const override { return "Max-SD"; }
  ErrorClass error_class() const override { return ErrorClass::kOutlier; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;
};

/// \brief Distance-based outlier detection: scores the extremes v_1, v_n
/// of a sorted column by their gap to the nearest neighbor, normalized by
/// the column's range (the formulation given in Section 4.2).
class DbodBaseline : public Baseline {
 public:
  std::string name() const override { return "DBOD"; }
  ErrorClass error_class() const override { return ErrorClass::kOutlier; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;
};

/// \brief Local outlier factor over 1-D numeric columns.
class LofBaseline : public Baseline {
 public:
  explicit LofBaseline(size_t k = 5) : k_(k) {}
  std::string name() const override { return "LOF"; }
  ErrorClass error_class() const override { return ErrorClass::kOutlier; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

  /// \brief Exposed for unit tests: LOF scores aligned with `values`.
  static std::vector<double> ComputeLof(const std::vector<double>& values,
                                        size_t k);

 private:
  size_t k_;
};

}  // namespace unidetect
