// Baseline: interface for the 15 existing methods Uni-Detect is compared
// against (Section 4.2). Baselines emit the same Finding structure so one
// Precision@K harness evaluates everything; their `score` is a rank key
// (smaller = more confident), typically the negated method-native score.

#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "detect/finding.h"
#include "table/table.h"

namespace unidetect {

/// \brief A comparison method producing ranked findings.
class Baseline {
 public:
  virtual ~Baseline() = default;

  /// \brief Display name used in benchmark output ("Fuzzy-Cluster", ...).
  virtual std::string name() const = 0;

  /// \brief The error class this baseline targets.
  virtual ErrorClass error_class() const = 0;

  /// \brief Appends findings for one table.
  virtual void Detect(const Table& table, std::vector<Finding>* out) const = 0;

  /// \brief Runs over a corpus and returns the ranked prediction list.
  std::vector<Finding> DetectCorpus(const Corpus& corpus) const;
};

}  // namespace unidetect
