#include "baselines/constraint_baselines.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "metrics/metric_functions.h"
#include "util/string_util.h"

namespace unidetect {

// ---------------------------------------------------------------------------
// Uniqueness baselines.

namespace {
void EmitUniquenessFinding(const Table& table, size_t column_index,
                           const UrProfile& profile, double rank_ratio,
                           const char* ratio_name,
                           std::vector<Finding>* out) {
  Finding finding;
  finding.error_class = ErrorClass::kUniqueness;
  finding.table_name = table.name();
  finding.column = column_index;
  finding.rows = profile.duplicate_rows;
  finding.value = table.column(column_index).cell(profile.duplicate_rows.front());
  finding.score = -rank_ratio;
  std::ostringstream os;
  os << ratio_name << " " << rank_ratio << " with "
     << profile.duplicate_rows.size() << " duplicate(s)";
  finding.explanation = os.str();
  out->push_back(std::move(finding));
}
}  // namespace

void UniqueRowRatioBaseline::Detect(const Table& table,
                                    std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (column.size() < 8) continue;
    const UrProfile profile = ComputeUrProfile(column);
    if (!profile.valid || profile.duplicate_rows.empty()) continue;
    if (profile.ur < min_ratio_) continue;
    EmitUniquenessFinding(table, c, profile, profile.ur, "unique-row-ratio",
                          out);
  }
}

void UniqueValueRatioBaseline::Detect(const Table& table,
                                      std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (column.size() < 8) continue;
    const UrProfile profile = ComputeUrProfile(column);
    if (!profile.valid || profile.duplicate_rows.empty()) continue;

    // Unique-value-ratio: values occurring exactly once / distinct values.
    std::unordered_map<std::string_view, size_t> counts;
    for (size_t row = 0; row < column.size(); ++row) {
      std::string_view cell = Trim(column.cell(row));
      if (!cell.empty()) counts[cell]++;
    }
    if (counts.empty()) continue;
    size_t singletons = 0;
    for (const auto& [value, count] : counts) {
      if (count == 1) ++singletons;
    }
    const double uvr =
        static_cast<double>(singletons) / static_cast<double>(counts.size());
    if (uvr < min_ratio_) continue;
    EmitUniquenessFinding(table, c, profile, uvr, "unique-value-ratio", out);
  }
}

// ---------------------------------------------------------------------------
// Approximate-FD baselines.

void ApproximateFdBaseline::Detect(const Table& table,
                                   std::vector<Finding>* out) const {
  size_t pairs = 0;
  for (size_t l = 0; l < table.num_columns(); ++l) {
    for (size_t r = 0; r < table.num_columns(); ++r) {
      if (l == r) continue;
      if (pairs >= max_pairs_per_table_) return;
      ++pairs;
      const Column& lhs = table.column(l);
      const Column& rhs = table.column(r);
      if (lhs.size() < 8) continue;
      const FrProfile profile = ComputeFrProfile(lhs, rhs);
      if (!profile.valid || profile.violating_rows.empty()) continue;
      const double score = PairScore(lhs, rhs);
      if (score < min_ratio_ || score >= 1.0) continue;

      Finding finding;
      finding.error_class = ErrorClass::kFd;
      finding.table_name = table.name();
      finding.column = l;
      finding.column2 = r;
      finding.rows = profile.violating_rows;
      finding.value = lhs.cell(profile.violating_rows.front()) + " -> " +
                      rhs.cell(profile.violating_rows.front());
      finding.score = -score;
      std::ostringstream os;
      os << name() << " " << score << " for (" << lhs.name() << " -> "
         << rhs.name() << ")";
      finding.explanation = os.str();
      out->push_back(std::move(finding));
    }
  }
}

double UniqueProjectionRatioBaseline::PairScore(const Column& lhs,
                                                const Column& rhs) const {
  std::unordered_set<std::string> x;
  std::unordered_set<std::string> xy;
  const size_t n = std::min(lhs.size(), rhs.size());
  for (size_t row = 0; row < n; ++row) {
    std::string l(Trim(lhs.cell(row)));
    std::string r(Trim(rhs.cell(row)));
    if (l.empty() || r.empty()) continue;
    xy.insert(l + "\x1f" + r);
    x.insert(std::move(l));
  }
  if (xy.empty()) return 0.0;
  return static_cast<double>(x.size()) / static_cast<double>(xy.size());
}

double ConformingRowRatioBaseline::PairScore(const Column& lhs,
                                             const Column& rhs) const {
  // Group rows by lhs; a row conforms iff its lhs group has one rhs value.
  std::unordered_map<std::string_view, std::unordered_set<std::string_view>>
      groups;
  std::unordered_map<std::string_view, size_t> group_rows;
  const size_t n = std::min(lhs.size(), rhs.size());
  size_t used = 0;
  for (size_t row = 0; row < n; ++row) {
    std::string_view l = Trim(lhs.cell(row));
    std::string_view r = Trim(rhs.cell(row));
    if (l.empty() || r.empty()) continue;
    ++used;
    groups[l].insert(r);
    group_rows[l]++;
  }
  if (used == 0) return 0.0;
  size_t conforming = 0;
  for (const auto& [l, rhs_values] : groups) {
    if (rhs_values.size() == 1) conforming += group_rows[l];
  }
  return static_cast<double>(conforming) / static_cast<double>(used);
}

double ConformingPairRatioBaseline::PairScore(const Column& lhs,
                                              const Column& rhs) const {
  // Conflicting ordered pairs: for each lhs group, rows whose rhs values
  // differ. Computed from group histograms (no O(n^2) scan).
  std::unordered_map<std::string_view,
                     std::unordered_map<std::string_view, size_t>>
      groups;
  const size_t n = std::min(lhs.size(), rhs.size());
  size_t used = 0;
  for (size_t row = 0; row < n; ++row) {
    std::string_view l = Trim(lhs.cell(row));
    std::string_view r = Trim(rhs.cell(row));
    if (l.empty() || r.empty()) continue;
    ++used;
    groups[l][r]++;
  }
  if (used == 0) return 0.0;
  double conflicting = 0.0;
  for (const auto& [l, hist] : groups) {
    size_t group_total = 0;
    double same = 0.0;
    for (const auto& [r, count] : hist) {
      group_total += count;
      same += static_cast<double>(count) * static_cast<double>(count);
    }
    conflicting += static_cast<double>(group_total) *
                       static_cast<double>(group_total) -
                   same;
  }
  const double total_pairs =
      static_cast<double>(used) * static_cast<double>(used);
  return 1.0 - conflicting / total_pairs;
}

}  // namespace unidetect
