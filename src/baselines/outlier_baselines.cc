#include "baselines/outlier_baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "metrics/dispersion.h"

namespace unidetect {

namespace {

// Shared eligibility check and finding assembly for the per-column
// score-the-maximum methods.
bool EligibleNumericColumn(const Column& column) {
  const ColumnType type = column.type();
  if (type != ColumnType::kInteger && type != ColumnType::kFloat) return false;
  return column.NumericValues().size() >= 8 &&
         column.NumericFraction() >= 0.8;
}

void EmitMaxScoreFinding(const Table& table, size_t column_index,
                         const MaxScore& max_score, const char* metric_name,
                         std::vector<Finding>* out) {
  if (!max_score.valid || max_score.score <= 0.0) return;
  const Column& column = table.column(column_index);
  const size_t row = column.NumericRows()[max_score.index];
  Finding finding;
  finding.error_class = ErrorClass::kOutlier;
  finding.table_name = table.name();
  finding.column = column_index;
  finding.rows = {row};
  finding.value = column.cell(row);
  finding.score = -max_score.score;
  std::ostringstream os;
  os << metric_name << " score " << max_score.score << " for '"
     << finding.value << "'";
  finding.explanation = os.str();
  out->push_back(std::move(finding));
}

}  // namespace

void MaxMadBaseline::Detect(const Table& table,
                            std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (!EligibleNumericColumn(table.column(c))) continue;
    EmitMaxScoreFinding(table, c, MaxMadScore(table.column(c).NumericValues()),
                        "MAD", out);
  }
}

void MaxSdBaseline::Detect(const Table& table,
                           std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (!EligibleNumericColumn(table.column(c))) continue;
    EmitMaxScoreFinding(table, c, MaxSdScore(table.column(c).NumericValues()),
                        "SD", out);
  }
}

void DbodBaseline::Detect(const Table& table,
                          std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (!EligibleNumericColumn(column)) continue;
    const auto& values = column.NumericValues();

    // Sort value indices; score both extremes, keep the stronger.
    std::vector<size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const double lo = values[order.front()];
    const double hi = values[order.back()];
    const double range = hi - lo;
    if (range <= 0.0) continue;
    const double low_score = (values[order[1]] - lo) / range;
    const double high_score = (hi - values[order[order.size() - 2]]) / range;
    const bool low_wins = low_score >= high_score;
    const size_t value_index = low_wins ? order.front() : order.back();
    const double score = low_wins ? low_score : high_score;
    if (score <= 0.0) continue;

    const size_t row = column.NumericRows()[value_index];
    Finding finding;
    finding.error_class = ErrorClass::kOutlier;
    finding.table_name = table.name();
    finding.column = c;
    finding.rows = {row};
    finding.value = column.cell(row);
    finding.score = -score;
    std::ostringstream os;
    os << "DBOD score " << score << " for '" << finding.value << "'";
    finding.explanation = os.str();
    out->push_back(std::move(finding));
  }
}

std::vector<double> LofBaseline::ComputeLof(const std::vector<double>& values,
                                            size_t k) {
  const size_t n = values.size();
  std::vector<double> lof(n, 0.0);
  if (n < k + 2) return lof;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = values[order[i]];

  // In 1-D the k nearest neighbors of sorted[i] form a contiguous window;
  // grow it greedily from both sides.
  auto neighbors = [&](size_t i) {
    std::vector<size_t> nb;
    size_t left = i;
    size_t right = i;
    while (nb.size() < k) {
      const bool can_left = left > 0;
      const bool can_right = right + 1 < n;
      if (!can_left && !can_right) break;
      const double dl = can_left ? sorted[i] - sorted[left - 1] : 0.0;
      const double dr = can_right ? sorted[right + 1] - sorted[i] : 0.0;
      // The exhausted side must lose outright: an infinite gap on the
      // live side (e.g. values spanning +/-1e308) beats any sentinel,
      // and a NaN gap makes every comparison false.
      if (can_left && (!can_right || dl <= dr)) {
        nb.push_back(--left);
      } else {
        nb.push_back(++right);
      }
    }
    return nb;
  };

  std::vector<double> k_distance(n, 0.0);
  std::vector<std::vector<size_t>> all_neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    all_neighbors[i] = neighbors(i);
    double kd = 0.0;
    for (size_t j : all_neighbors[i]) {
      kd = std::max(kd, std::fabs(sorted[i] - sorted[j]));
    }
    k_distance[i] = kd;
  }

  // Local reachability density: 1 / mean reachability distance, where
  // reach-dist(i, j) = max(k-distance(j), d(i, j)).
  std::vector<double> lrd(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j : all_neighbors[i]) {
      sum += std::max(k_distance[j], std::fabs(sorted[i] - sorted[j]));
    }
    lrd[i] = sum > 0.0 ? static_cast<double>(all_neighbors[i].size()) / sum
                       : 1e12;  // coincident points: effectively infinite
  }
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t j : all_neighbors[i]) sum += lrd[j];
    const double denom =
        lrd[i] * static_cast<double>(all_neighbors[i].size());
    const double score = denom > 0.0 ? sum / denom : 0.0;
    lof[order[i]] = score;
  }
  return lof;
}

void LofBaseline::Detect(const Table& table, std::vector<Finding>* out) const {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    if (!EligibleNumericColumn(column)) continue;
    const auto& values = column.NumericValues();
    const std::vector<double> lof = ComputeLof(values, k_);
    size_t best = 0;
    for (size_t i = 1; i < lof.size(); ++i) {
      if (lof[i] > lof[best]) best = i;
    }
    if (lof.empty() || lof[best] <= 1.0) continue;  // <=1: inlier density

    const size_t row = column.NumericRows()[best];
    Finding finding;
    finding.error_class = ErrorClass::kOutlier;
    finding.table_name = table.name();
    finding.column = c;
    finding.rows = {row};
    finding.value = column.cell(row);
    finding.score = -lof[best];
    std::ostringstream os;
    os << "LOF " << lof[best] << " for '" << finding.value << "'";
    finding.explanation = os.str();
    out->push_back(std::move(finding));
  }
}

}  // namespace unidetect
