// Spelling-error baselines of Section 4.2:
//
//   Fuzzy-Cluster [8,9]     -- close value pairs ranked by edit distance
//                              then differing-token length
//   Speller [1,6]           -- noisy-channel spell checker over a corpus
//                              token-frequency dictionary (our substitute
//                              for the commercial search-engine speller)
//   Speller (address-only)  -- Speller restricted to address-ish columns
//   Word2Vec / GloVe OOV    -- out-of-vocabulary tokens predicted as
//                              misspelled (vocabulary = frequent corpus
//                              tokens, substituting pretrained embeddings)

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "baselines/baseline.h"
#include "corpus/token_index.h"

namespace unidetect {

/// \brief Fuzzy-clustering feature of OpenRefine/Paxata: flags value
/// pairs within a small edit distance, longer differing tokens first.
class FuzzyClusterBaseline : public Baseline {
 public:
  /// Pairs with edit distance <= max_distance are flagged.
  explicit FuzzyClusterBaseline(size_t max_distance = 2,
                                size_t max_pairs_per_column = 5)
      : max_distance_(max_distance),
        max_pairs_per_column_(max_pairs_per_column) {}

  std::string name() const override { return "Fuzzy-Cluster"; }
  ErrorClass error_class() const override { return ErrorClass::kSpelling; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  size_t max_distance_;
  size_t max_pairs_per_column_;
};

/// \brief Word frequency dictionary shared by the Speller and OOV
/// baselines, built from the background corpus token index.
class WordFrequency {
 public:
  explicit WordFrequency(const TokenIndex& index);

  /// \brief Corpus table count of a (case-folded) alphabetic word.
  uint64_t Count(std::string_view word) const;

  /// \brief Most frequent in-dictionary word within edit distance 1 of
  /// `word` (excluding `word` itself) with count >= min_count; empty if
  /// none.
  std::string BestCorrection(std::string_view word,
                             uint64_t min_count) const;

 private:
  std::unordered_map<std::string, uint64_t> counts_;
};

/// \brief Noisy-channel speller: a rare token with a frequent
/// edit-distance-1 neighbor is "corrected" to it — reproducing both the
/// true positives and the idiosyncratic-token false positives (Figure 3)
/// of commercial spellers applied to tables.
struct SpellerOptions {
  /// A token is a correction candidate only if at most this frequent.
  uint64_t max_token_count = 3;
  /// A correction must be at least this frequent.
  uint64_t min_correction_count = 15;
  /// Restrict to address-ish columns (the Speller(address) variant).
  bool address_only = false;
};

class SpellerBaseline : public Baseline {
 public:
  /// `frequency` must outlive the baseline.
  explicit SpellerBaseline(const WordFrequency* frequency,
                           SpellerOptions options = {})
      : frequency_(frequency), options_(options) {}

  std::string name() const override {
    return options_.address_only ? "Speller (address-only)" : "Speller";
  }
  ErrorClass error_class() const override { return ErrorClass::kSpelling; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const WordFrequency* frequency_;
  SpellerOptions options_;
};

/// \brief OOV predictor standing in for Word2Vec/GloVe: any alphabetic
/// token absent from the vocabulary (tokens with corpus count >=
/// vocabulary_min_count) marks its cell as misspelled.
class OovBaseline : public Baseline {
 public:
  /// `display_name` distinguishes "Word2Vec" (smaller vocabulary, higher
  /// min count) from "GloVe" (larger vocabulary).
  OovBaseline(const TokenIndex* index, std::string display_name,
              uint64_t vocabulary_min_count)
      : index_(index),
        display_name_(std::move(display_name)),
        vocabulary_min_count_(vocabulary_min_count) {}

  std::string name() const override { return display_name_; }
  ErrorClass error_class() const override { return ErrorClass::kSpelling; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const TokenIndex* index_;
  std::string display_name_;
  uint64_t vocabulary_min_count_;
};

}  // namespace unidetect
