#include "baselines/baseline.h"

namespace unidetect {

std::vector<Finding> Baseline::DetectCorpus(const Corpus& corpus) const {
  std::vector<Finding> all;
  for (size_t i = 0; i < corpus.tables.size(); ++i) {
    std::vector<Finding> findings;
    Detect(corpus.tables[i], &findings);
    for (auto& finding : findings) {
      finding.table_index = i;
      all.push_back(std::move(finding));
    }
  }
  SortFindings(&all);
  return all;
}

}  // namespace unidetect
