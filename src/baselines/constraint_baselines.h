// Uniqueness- and FD-violation baselines of Section 4.2:
//
//   Unique-row-ratio [37]        -- distinct values / rows, rank near 1
//   Unique-value-ratio [48]      -- frequency-1 values / distinct values
//   Unique-projection-ratio [53] -- |pi_X(T)| / |pi_XY(T)| for FDs
//   Conforming-row-ratio [56]    -- FD-conforming rows / rows
//   Conforming-pair-ratio [56]   -- FD-conforming row pairs / row pairs
//
// All five implement the literature's shared heuristic that constraints
// that *almost* hold (ratio just under 1) are likely violated — the
// heuristic whose false positives (Figure 2) motivate Uni-Detect.

#pragma once

#include "baselines/baseline.h"

namespace unidetect {

/// \brief Unique-row-ratio: flags duplicate values in almost-unique
/// columns, ranked by how close distinct/total is to 1.
class UniqueRowRatioBaseline : public Baseline {
 public:
  /// Columns below this ratio are not flagged at all.
  explicit UniqueRowRatioBaseline(double min_ratio = 0.9)
      : min_ratio_(min_ratio) {}

  std::string name() const override { return "Unique-row-ratio"; }
  ErrorClass error_class() const override { return ErrorClass::kUniqueness; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  double min_ratio_;
};

/// \brief Unique-value-ratio: same flagging, ranked by the fraction of
/// distinct values that occur exactly once (robust to frequency
/// outliers, per [48]).
class UniqueValueRatioBaseline : public Baseline {
 public:
  explicit UniqueValueRatioBaseline(double min_ratio = 0.9)
      : min_ratio_(min_ratio) {}

  std::string name() const override { return "Unique-value-ratio"; }
  ErrorClass error_class() const override { return ErrorClass::kUniqueness; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  double min_ratio_;
};

/// \brief Shared scaffolding for the three approximate-FD baselines:
/// enumerate ordered column pairs, compute a pair score in [0, 1], flag
/// near-1 pairs with their violating rows.
class ApproximateFdBaseline : public Baseline {
 public:
  explicit ApproximateFdBaseline(double min_ratio = 0.9,
                                 size_t max_pairs_per_table = 30)
      : min_ratio_(min_ratio), max_pairs_per_table_(max_pairs_per_table) {}

  ErrorClass error_class() const override { return ErrorClass::kFd; }
  void Detect(const Table& table, std::vector<Finding>* out) const override;

 protected:
  /// \brief Method-specific ratio in [0, 1]; 1 = FD holds exactly.
  virtual double PairScore(const Column& lhs, const Column& rhs) const = 0;

 private:
  double min_ratio_;
  size_t max_pairs_per_table_;
};

/// \brief |pi_X(T)| / |pi_XY(T)| (CORDS-style soft FDs).
class UniqueProjectionRatioBaseline : public ApproximateFdBaseline {
 public:
  using ApproximateFdBaseline::ApproximateFdBaseline;
  std::string name() const override { return "Unique-projection-ratio"; }

 protected:
  double PairScore(const Column& lhs, const Column& rhs) const override;
};

/// \brief Fraction of rows u with no conflicting v (u[X]=v[X],
/// u[Y]!=v[Y]).
class ConformingRowRatioBaseline : public ApproximateFdBaseline {
 public:
  using ApproximateFdBaseline::ApproximateFdBaseline;
  std::string name() const override { return "Conforming-row-ratio"; }

 protected:
  double PairScore(const Column& lhs, const Column& rhs) const override;
};

/// \brief 1 - (conflicting ordered row pairs) / |T|^2.
class ConformingPairRatioBaseline : public ApproximateFdBaseline {
 public:
  using ApproximateFdBaseline::ApproximateFdBaseline;
  std::string name() const override { return "Conforming-pair-ratio"; }

 protected:
  double PairScore(const Column& lhs, const Column& rhs) const override;
};

}  // namespace unidetect
