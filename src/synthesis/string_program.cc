#include "synthesis/string_program.h"

#include <algorithm>

#include "util/string_util.h"

namespace unidetect {

namespace {

std::optional<std::string> ApplyTransform(TransformKind kind, char separator,
                                          size_t token_index, long factor,
                                          const std::string& input) {
  switch (kind) {
    case TransformKind::kIdentity:
      return input;
    case TransformKind::kUpperCase:
      return ToUpper(input);
    case TransformKind::kLowerCase:
      return ToLower(input);
    case TransformKind::kTokenAt: {
      const std::vector<std::string> tokens = Split(input, separator);
      if (token_index >= tokens.size()) return std::nullopt;
      std::string token = std::string(Trim(tokens[token_index]));
      if (token.empty()) return std::nullopt;
      return token;
    }
    case TransformKind::kScaleInt: {
      if (!LooksLikeInteger(input)) return std::nullopt;
      const auto value = ParseNumeric(input);
      if (!value.has_value()) return std::nullopt;
      return std::to_string(static_cast<long long>(*value) * factor);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> StringProgram::Apply(
    const std::string& input) const {
  auto transformed =
      ApplyTransform(transform, separator, token_index, factor, input);
  if (!transformed.has_value()) return std::nullopt;
  return prefix + *transformed + suffix;
}

std::string StringProgram::Describe() const {
  std::string body;
  switch (transform) {
    case TransformKind::kIdentity:
      body = "x";
      break;
    case TransformKind::kUpperCase:
      body = "upper(x)";
      break;
    case TransformKind::kLowerCase:
      body = "lower(x)";
      break;
    case TransformKind::kTokenAt:
      body = "split(x, '" + std::string(1, separator) + "')[" +
             std::to_string(token_index) + "]";
      break;
    case TransformKind::kScaleInt:
      body = std::to_string(factor) + " * x";
      break;
  }
  std::string out;
  if (!prefix.empty()) out += "\"" + prefix + "\" + ";
  out += body;
  if (!suffix.empty()) out += " + \"" + suffix + "\"";
  return out;
}

namespace {

struct TransformSpec {
  TransformKind kind;
  char separator = ' ';
  size_t token_index = 0;
  long factor = 1;
};

// Fixed search order: simpler transforms first.
std::vector<TransformSpec> TransformCandidates() {
  std::vector<TransformSpec> out;
  out.push_back({TransformKind::kIdentity});
  out.push_back({TransformKind::kUpperCase});
  out.push_back({TransformKind::kLowerCase});
  for (char sep : {' ', ',', '-', '/'}) {
    for (size_t k = 0; k < 3; ++k) {
      out.push_back({TransformKind::kTokenAt, sep, k});
    }
  }
  for (long factor : {2L, 3L, 10L, 100L}) {
    TransformSpec spec;
    spec.kind = TransformKind::kScaleInt;
    spec.factor = factor;
    out.push_back(spec);
  }
  return out;
}

// (prefix, suffix) decompositions of `target` around occurrences of
// `core`.
std::vector<std::pair<std::string, std::string>> Decompose(
    const std::string& target, const std::string& core) {
  std::vector<std::pair<std::string, std::string>> out;
  if (core.empty()) return out;
  size_t pos = target.find(core);
  while (pos != std::string::npos) {
    out.emplace_back(target.substr(0, pos), target.substr(pos + core.size()));
    pos = target.find(core, pos + 1);
  }
  return out;
}

}  // namespace

SynthesisResult SynthesizeColumnProgram(const Column& lhs, const Column& rhs,
                                        const SynthesisOptions& options) {
  SynthesisResult result;
  const size_t n = std::min(lhs.size(), rhs.size());
  // Non-empty example rows.
  std::vector<size_t> examples;
  for (size_t row = 0; row < n; ++row) {
    if (!Trim(lhs.cell(row)).empty() && !Trim(rhs.cell(row)).empty()) {
      examples.push_back(row);
    }
  }
  if (examples.size() < options.min_rows) return result;

  const size_t seeds = std::min(examples.size(), options.max_seed_rows);
  for (const TransformSpec& spec : TransformCandidates()) {
    // Propose (prefix, suffix) pairs from a handful of seed rows. Any
    // single seed may be the corrupted cell, so candidates are *voted on*
    // over every example rather than intersected across seeds.
    std::vector<std::pair<std::string, std::string>> candidates;
    for (size_t s = 0; s < seeds && candidates.size() < 16; ++s) {
      const size_t row = examples[s];
      const auto core = ApplyTransform(spec.kind, spec.separator,
                                       spec.token_index, spec.factor,
                                       lhs.cell(row));
      if (!core.has_value()) continue;
      for (auto& candidate : Decompose(rhs.cell(row), *core)) {
        if (std::find(candidates.begin(), candidates.end(), candidate) ==
            candidates.end()) {
          candidates.push_back(std::move(candidate));
        }
      }
    }
    if (candidates.empty()) continue;

    // Vote: the candidate explaining the most example rows wins.
    StringProgram best_program;
    size_t best_explained = 0;
    std::vector<size_t> best_violations;
    for (const auto& [prefix, suffix] : candidates) {
      StringProgram program;
      program.transform = spec.kind;
      program.separator = spec.separator;
      program.token_index = spec.token_index;
      program.factor = spec.factor;
      program.prefix = prefix;
      program.suffix = suffix;
      std::vector<size_t> violations;
      size_t explained = 0;
      for (size_t row : examples) {
        const auto predicted = program.Apply(lhs.cell(row));
        if (predicted.has_value() && *predicted == rhs.cell(row)) {
          ++explained;
        } else {
          violations.push_back(row);
        }
      }
      if (explained > best_explained) {
        best_explained = explained;
        best_program = program;
        best_violations = std::move(violations);
      }
    }
    const double coverage = static_cast<double>(best_explained) /
                            static_cast<double>(examples.size());
    if (coverage < options.min_coverage) continue;

    result.found = true;
    result.program = best_program;
    result.coverage = coverage;
    result.violating_rows = std::move(best_violations);
    return result;
  }
  return result;
}

}  // namespace unidetect
