// FD-synthesis detector (Appendix D): FD-violation detection restricted
// to column pairs with a learnt programmatic relationship. The LR
// reasoning is identical to the FD detector (Section 3.4, "The exact
// error-detection reasoning for FD-synthesis in UNIDETECT is identical to
// FD"); requiring a synthesized program prunes the coincidental
// almost-FDs that drag plain FD precision down (Figure 12).

#pragma once

#include <cstddef>

#include "detect/detector.h"
#include "learn/model.h"
#include "synthesis/string_program.h"

namespace unidetect {

/// \brief UniDetect-FD over synthesized programmatic pairs only.
class FdSynthesisDetector : public Detector {
 public:
  /// `model` must outlive the detector.
  explicit FdSynthesisDetector(const Model* model,
                               SynthesisOptions synthesis = {},
                               size_t max_pairs_per_table = 30)
      : model_(model),
        synthesis_(synthesis),
        max_pairs_per_table_(max_pairs_per_table) {}

  ErrorClass error_class() const override { return ErrorClass::kFd; }

  void Detect(const Table& table, std::vector<Finding>* out) const override;

 private:
  const Model* model_;
  SynthesisOptions synthesis_;
  size_t max_pairs_per_table_;
};

}  // namespace unidetect
