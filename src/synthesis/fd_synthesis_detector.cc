#include "synthesis/fd_synthesis_detector.h"

#include "learn/candidates.h"
#include "util/string_util.h"

namespace unidetect {

void FdSynthesisDetector::Detect(const Table& table,
                                 std::vector<Finding>* out) const {
  const ModelOptions& options = model_->options();
  size_t pairs = 0;
  for (size_t l = 0; l < table.num_columns(); ++l) {
    for (size_t r = 0; r < table.num_columns(); ++r) {
      if (l == r) continue;
      if (pairs >= max_pairs_per_table_) return;
      ++pairs;
      const Column& lhs = table.column(l);
      const Column& rhs = table.column(r);

      const SynthesisResult synth =
          SynthesizeColumnProgram(lhs, rhs, synthesis_);
      if (!synth.found || synth.violating_rows.empty()) continue;
      // A programmatic relationship exists and a few rows break it; run
      // the ordinary FD perturbation test on the pair.
      const FdCandidate cand =
          ExtractFdCandidate(lhs, rhs, model_->token_index(), options);
      if (!cand.valid || cand.dropped_rows.empty()) continue;
      const double lr = model_->LikelihoodRatio(ErrorClass::kFd, cand.key,
                                                cand.theta1, cand.theta2);
      if (lr >= 1.0) continue;

      Finding finding;
      finding.error_class = ErrorClass::kFd;
      finding.table_name = table.name();
      finding.column = l;
      finding.column2 = r;
      // Rows the program fails to explain are the repairable violations;
      // fall back to the FD candidate's rows if the program explains the
      // FD-violating rows (conflict on lhs duplication only).
      finding.rows = synth.violating_rows;
      for (size_t row : cand.dropped_rows) finding.rows.push_back(row);
      finding.value = lhs.cell(finding.rows.front()) + " -> " +
                      rhs.cell(finding.rows.front());
      finding.score = lr;
      finding.explanation =
          StrCat("program y = ", synth.program.Describe(), " (coverage ",
                 synth.coverage, "), FR ", cand.theta1, " -> ", cand.theta2,
                 ", LR=", lr);
      out->push_back(std::move(finding));
    }
  }
}

}  // namespace unidetect
