// String-program synthesis for FD-synthesis (Appendix D): learns an
// explicit programmatic relationship Y = prefix . T(X) . suffix between
// two columns, where T is a small transform (identity, token extraction,
// case folding). Examples the paper gives: "Malaysia Federal Route 748"
// from shield "748" (Figure 13) and "Mr Gay Hong Kong" from country
// "Hong Kong" (Figure 14).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "table/column.h"

namespace unidetect {

/// \brief The transform applied to the input value before concatenation.
enum class TransformKind : int {
  kIdentity = 0,
  kTokenAt,    ///< k-th token after splitting on a separator
  kUpperCase,
  kLowerCase,
  kScaleInt,   ///< integer multiplication (points = 3 * wins, cents = 100 * dollars)
};

/// \brief A synthesized unary string program: Apply(x) = prefix +
/// transform(x) + suffix.
struct StringProgram {
  TransformKind transform = TransformKind::kIdentity;
  char separator = ' ';  ///< only for kTokenAt
  size_t token_index = 0;  ///< only for kTokenAt
  long factor = 1;  ///< only for kScaleInt
  std::string prefix;
  std::string suffix;

  /// \brief Evaluates the program; nullopt when the transform does not
  /// apply (e.g. token index out of range).
  std::optional<std::string> Apply(const std::string& input) const;

  /// \brief Human-readable form, e.g. `"Mr " + x`.
  std::string Describe() const;
};

/// \brief Result of synthesizing a program from (lhs, rhs) examples.
struct SynthesisResult {
  bool found = false;
  StringProgram program;
  /// Fraction of non-empty example rows the program explains.
  double coverage = 0.0;
  /// Rows where program(lhs) != rhs — FD-synthesis violation candidates.
  std::vector<size_t> violating_rows;
};

/// \brief Synthesis options.
struct SynthesisOptions {
  /// A program must explain at least this fraction of rows.
  double min_coverage = 0.7;
  /// At least this many example rows are required.
  size_t min_rows = 8;
  /// Examples scanned for candidate (prefix, suffix) pairs; remaining
  /// rows only vote.
  size_t max_seed_rows = 20;
};

/// \brief Searches the program space for one explaining rhs from lhs.
/// Deterministic: transforms are tried in a fixed order and the first
/// program reaching full agreement on the seed rows wins (ties broken
/// toward simpler transforms).
SynthesisResult SynthesizeColumnProgram(const Column& lhs, const Column& rhs,
                                        const SynthesisOptions& options = {});

}  // namespace unidetect
