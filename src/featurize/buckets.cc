#include "featurize/buckets.h"

namespace unidetect {

uint8_t RowCountBucket(size_t rows) {
  if (rows <= 20) return 0;
  if (rows <= 50) return 1;
  if (rows <= 100) return 2;
  if (rows <= 500) return 3;
  if (rows <= 1000) return 4;
  return 5;
}

uint8_t TokenLengthBucket(double avg_length) {
  if (avg_length <= 5) return 0;
  if (avg_length <= 10) return 1;
  if (avg_length <= 15) return 2;
  if (avg_length <= 20) return 3;
  return 4;
}

uint8_t PrevalenceBucket(double avg_prevalence) {
  if (avg_prevalence <= 50) return 0;
  if (avg_prevalence <= 100) return 1;
  if (avg_prevalence <= 1000) return 2;
  if (avg_prevalence <= 10000) return 3;
  if (avg_prevalence <= 100000) return 4;
  return 5;
}

uint8_t LeftnessBucket(size_t column_position) {
  return column_position >= 3 ? 3 : static_cast<uint8_t>(column_position);
}

}  // namespace unidetect
