// Bucketization of the featurization cube dimensions (Figure 5 and the
// bucket lists in Sections 3.1-3.3). Subsetting S_D^F(T) selects corpus
// columns whose buckets all match the test column's.

#pragma once

#include <cstdint>
#include <cstddef>

namespace unidetect {

/// \brief Row-count buckets {(0-20], (20-50], (50-100], (100-500],
/// (500-1000], (1000-inf)} -> 0..5.
uint8_t RowCountBucket(size_t rows);
constexpr uint8_t kNumRowCountBuckets = 6;

/// \brief Token-length buckets {(0-5], (5-10], (10-15], (15-20],
/// (20-inf)} -> 0..4 (Section 3.2, average differing-token length).
uint8_t TokenLengthBucket(double avg_length);
constexpr uint8_t kNumTokenLengthBuckets = 5;

/// \brief Prevalence buckets {(0-50], (50-100], (100-1000], (1000-10000],
/// (10000-100000], (100000-inf)} -> 0..5 (Section 3.3, Prev(C)).
uint8_t PrevalenceBucket(double avg_prevalence);
constexpr uint8_t kNumPrevalenceBuckets = 6;

/// \brief Column position from the left, capped: 0, 1, 2, 3+ -> 0..3
/// ("leftness" [26, 28]; key columns tend to be leftmost).
uint8_t LeftnessBucket(size_t column_position);
constexpr uint8_t kNumLeftnessBuckets = 4;

}  // namespace unidetect
