// Per-error-class featurization: maps a test column (pair) to the
// FeatureKey identifying the corpus subset S_D^F(T) it is compared with.
//
// The exact dimensions follow the paper:
//   outliers   (3.1): type, row bucket, log-transform fit
//   spelling   (3.2): type, row bucket, differing-token-length bucket
//   uniqueness (3.3): type, row bucket, leftness, token prevalence
//   FD         (3.4): same as 3.3, applied to the rhs column, plus the
//                     lhs column type
//
// The trainer and the detectors must agree on keys: both call these
// functions with the same FeaturizeOptions (stored inside the Model).

#pragma once

#include <cstdint>
#include <string>

#include "corpus/token_index.h"
#include "metrics/metric_functions.h"
#include "table/column.h"

namespace unidetect {

/// \brief The four error classes Uni-Detect is instantiated for, plus
/// pattern incompatibility (Auto-Detect, Section 3.5 — detected by the
/// PMI mechanism shown to coincide with the LR test).
enum class ErrorClass : int {
  kOutlier = 0,
  kSpelling = 1,
  kUniqueness = 2,
  kFd = 3,
  kPattern = 4,
};
constexpr int kNumErrorClasses = 5;

const char* ErrorClassToString(ErrorClass c);

/// \brief Opaque subset identifier; equal keys = same corpus subset.
struct FeatureKey {
  uint64_t packed = 0;
  bool operator==(const FeatureKey& other) const {
    return packed == other.packed;
  }
};

struct FeatureKeyHash {
  size_t operator()(const FeatureKey& k) const {
    // Finalizer of SplitMix64: full avalanche over the packed bits.
    uint64_t z = k.packed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

/// \brief Controls which dimensions participate in the key.
///
/// `enabled = false` collapses every column into one subset per error
/// class — the "no featurization, use all of T" ablation of Section 2.2.2.
struct FeaturizeOptions {
  bool enabled = true;
};

/// \brief Key for numeric-outlier analysis (Section 3.1).
FeatureKey OutlierFeatures(const Column& column,
                           const FeaturizeOptions& options);

/// \brief Key for spelling analysis (Section 3.2); uses the MPD pair's
/// differing-token length from the profile.
FeatureKey SpellingFeatures(const Column& column, const MpdProfile& profile,
                            const FeaturizeOptions& options);

/// \brief Key for uniqueness analysis (Section 3.3). `column_position` is
/// the column's index from the left; `index` supplies Prev(C) (a plain
/// TokenIndex binds via TokenPrevalence's implicit conversion; layered
/// serving passes the stack's merged view).
FeatureKey UniquenessFeatures(const Column& column, size_t column_position,
                              const TokenPrevalence& index,
                              const FeaturizeOptions& options);

/// \brief Key for FD analysis (Section 3.4) over the (lhs, rhs) pair.
FeatureKey FdFeatures(const Column& lhs, const Column& rhs,
                      const TokenPrevalence& index,
                      const FeaturizeOptions& options);

/// \brief Debug rendering of a key ("class=uniqueness type=3 rows=2 ...").
std::string FeatureKeyToString(FeatureKey key);

}  // namespace unidetect
