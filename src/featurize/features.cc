#include "featurize/features.h"

#include <sstream>

#include "featurize/buckets.h"
#include "metrics/dispersion.h"

namespace unidetect {

const char* ErrorClassToString(ErrorClass c) {
  switch (c) {
    case ErrorClass::kOutlier:
      return "outlier";
    case ErrorClass::kSpelling:
      return "spelling";
    case ErrorClass::kUniqueness:
      return "uniqueness";
    case ErrorClass::kFd:
      return "fd";
    case ErrorClass::kPattern:
      return "pattern";
  }
  return "?";
}

namespace {

// Bit layout (low to high):
//   [0,3)   error class
//   [3,6)   column type (rhs type for FD)
//   [6,9)   row-count bucket
//   [9,12)  class-specific A (log-fit / token-length / leftness / lhs type)
//   [12,15) class-specific B (prevalence)
class KeyBuilder {
 public:
  explicit KeyBuilder(ErrorClass c) {
    key_ = static_cast<uint64_t>(c);
    shift_ = 3;
  }
  KeyBuilder& Add(uint64_t value, int bits) {
    key_ |= value << shift_;
    shift_ += bits;
    return *this;
  }
  FeatureKey Build() const { return FeatureKey{key_}; }

 private:
  uint64_t key_ = 0;
  int shift_ = 0;
};

}  // namespace

FeatureKey OutlierFeatures(const Column& column,
                           const FeaturizeOptions& options) {
  KeyBuilder kb(ErrorClass::kOutlier);
  if (!options.enabled) return kb.Build();
  const auto& values = column.NumericValues();
  kb.Add(static_cast<uint64_t>(column.type()), 3)
      .Add(RowCountBucket(column.size()), 3)
      .Add(LogTransformFitsBetter(values) ? 1 : 0, 3);
  return kb.Build();
}

FeatureKey SpellingFeatures(const Column& column, const MpdProfile& profile,
                            const FeaturizeOptions& options) {
  KeyBuilder kb(ErrorClass::kSpelling);
  if (!options.enabled) return kb.Build();
  kb.Add(static_cast<uint64_t>(column.type()), 3)
      .Add(RowCountBucket(column.size()), 3)
      .Add(TokenLengthBucket(profile.avg_diff_token_length), 3);
  return kb.Build();
}

FeatureKey UniquenessFeatures(const Column& column, size_t column_position,
                              const TokenPrevalence& index,
                              const FeaturizeOptions& options) {
  KeyBuilder kb(ErrorClass::kUniqueness);
  if (!options.enabled) return kb.Build();
  kb.Add(static_cast<uint64_t>(column.type()), 3)
      .Add(RowCountBucket(column.size()), 3)
      .Add(LeftnessBucket(column_position), 3)
      .Add(PrevalenceBucket(index.AveragePrevalence(column)), 3);
  return kb.Build();
}

FeatureKey FdFeatures(const Column& lhs, const Column& rhs,
                      const TokenPrevalence& index,
                      const FeaturizeOptions& options) {
  KeyBuilder kb(ErrorClass::kFd);
  if (!options.enabled) return kb.Build();
  kb.Add(static_cast<uint64_t>(rhs.type()), 3)
      .Add(RowCountBucket(rhs.size()), 3)
      .Add(static_cast<uint64_t>(lhs.type()), 3)
      .Add(PrevalenceBucket(index.AveragePrevalence(rhs)), 3);
  return kb.Build();
}

std::string FeatureKeyToString(FeatureKey key) {
  std::ostringstream os;
  const auto cls = static_cast<ErrorClass>(key.packed & 0x7);
  os << "class=" << ErrorClassToString(cls);
  os << " type=" << ((key.packed >> 3) & 0x7);
  os << " rows=" << ((key.packed >> 6) & 0x7);
  os << " a=" << ((key.packed >> 9) & 0x7);
  os << " b=" << ((key.packed >> 12) & 0x7);
  return os.str();
}

}  // namespace unidetect
