// The four metric functions m() that describe a column (or column pair)
// as a number, per Sections 3.1-3.4:
//
//   max-MAD  -- numeric outliers   (Eq. 10; see dispersion.h)
//   MPD      -- spelling mistakes  (minimum pair-wise edit distance)
//   UR       -- uniqueness         (distinct / total)
//   FR       -- FD violations      (conforming distinct pairs / pairs)
//
// Each function also reports the natural perturbation candidate O (the
// rows whose removal defines D_O^P) and the post-perturbation metric
// value, since detectors need the (theta1, theta2) pair.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "table/column.h"

namespace unidetect {

// ---------------------------------------------------------------------------
// Uniqueness ratio (UR), Section 3.3.

/// \brief UR(C) plus the duplicate rows that form the perturbation.
struct UrProfile {
  bool valid = false;       ///< false for empty columns
  double ur = 0.0;          ///< num-distinct / num-total
  double ur_perturbed = 0.0;  ///< UR after dropping `duplicate_rows`
  /// Every row beyond the first occurrence of a repeated value, in row
  /// order. Dropping them all makes the column exactly unique.
  std::vector<size_t> duplicate_rows;
};

/// \brief Computes the uniqueness profile of a column. Empty cells are
/// ignored for duplicate detection (missing values are not duplicates).
UrProfile ComputeUrProfile(const Column& column);

// ---------------------------------------------------------------------------
// Minimum pair-wise edit distance (MPD), Section 3.2 / Example 1.

/// \brief MPD(C) plus the closest pair and the perturbed MPD.
struct MpdProfile {
  bool valid = false;  ///< false when < 3 distinct values
  size_t mpd = 0;      ///< min edit distance over distinct value pairs
  /// Rows of the closest pair (first occurrence of each value).
  size_t row_a = 0;
  size_t row_b = 0;
  std::string value_a;
  std::string value_b;
  /// MPD after removing the better endpoint of the closest pair (the
  /// removal maximizing the perturbed MPD, i.e. minimizing the LR).
  size_t mpd_perturbed = 0;
  /// Which row the perturbation drops (row_a or row_b).
  size_t drop_row = 0;
  /// Average length of the tokens that differ between the MPD pair
  /// (featurization dimension (3) of Section 3.2): long differing tokens
  /// ("Doeling"/"Dowling") suggest typos, short ones ("XXI"/"XXII") do not.
  double avg_diff_token_length = 0.0;
};

/// \brief Options bounding the O(n^2) pair scan.
struct MpdOptions {
  /// Distances above this are treated as "far" and reported as cap + 1.
  size_t distance_cap = 20;
  /// Columns with more distinct values than this are subsampled
  /// deterministically (closest pairs among the first `max_values` kept
  /// by first occurrence).
  size_t max_values = 400;
};

/// \brief Computes the MPD profile of a column over distinct, non-empty,
/// non-numeric-only values. Numeric columns are not meaningful targets
/// for edit-distance spelling analysis and return valid = false.
///
/// Internally runs a single length-sorted pass over value pairs that
/// yields the closest pair and both endpoint-exclusion minima at once,
/// with bit-parallel bounded edit distances and cheap lower-bound
/// prefilters (see metric_functions.cc).
MpdProfile ComputeMpdProfile(const Column& column, const MpdOptions& options = {});

/// \brief Reference implementation of ComputeMpdProfile: three full
/// banded-DP closest-pair scans (the seed algorithm). Kept as the oracle
/// for property tests and the baseline for perf benchmarks; produces
/// results identical to ComputeMpdProfile.
MpdProfile ComputeMpdProfileReference(const Column& column,
                                      const MpdOptions& options = {});

// ---------------------------------------------------------------------------
// FD compliance ratio (FR), Section 3.4.

/// \brief FR of a candidate FD (lhs -> rhs) plus its violations.
struct FrProfile {
  bool valid = false;  ///< false when the pair is degenerate (see .cc)
  double fr = 0.0;     ///< conforming distinct (lhs,rhs) pairs / all pairs
  double fr_perturbed = 0.0;  ///< FR after dropping `violating_rows`
  /// Rows participating in violating lhs-groups, minus one "kept" row per
  /// group (the majority rhs representative): the minimal row set whose
  /// removal makes the FD hold exactly.
  std::vector<size_t> violating_rows;
  /// Number of lhs groups with more than one distinct rhs.
  size_t violating_groups = 0;
};

/// \brief Computes the FR profile of the (lhs, rhs) column pair.
FrProfile ComputeFrProfile(const Column& lhs, const Column& rhs);

}  // namespace unidetect
