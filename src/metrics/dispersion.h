// Statistical dispersion measures from Section 3.1: standard deviation,
// median absolute deviation (robust statistics, Hellerstein [48]), and
// interquartile range, plus the per-value outlier-ness scores built on them.

#pragma once

#include <cstddef>
#include <vector>

namespace unidetect {

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// \brief Sample standard deviation (N-1 denominator, Eq. 6); 0 if n < 2.
double StdDev(const std::vector<double>& values);

/// \brief Median (average of middle two for even n); 0 for empty input.
double Median(std::vector<double> values);

/// \brief Median absolute deviation (Eq. 7).
double Mad(const std::vector<double>& values);

/// \brief Interquartile range Q3 - Q1 (linear-interpolated quartiles).
double Iqr(std::vector<double> values);

/// \brief SD-score of v within C: |v - mean| / SD (Eq. 8). Returns 0 when
/// SD is 0 (constant column: nothing is an outlier by dispersion).
double ScoreSd(double v, const std::vector<double>& values);

/// \brief MAD-score of v within C: |v - median| / MAD (Eq. 9).
///
/// When MAD is 0 but the column is not constant (over half the values are
/// identical), falls back to |v - median| / (IQR/1.349), and to 0 if that
/// is degenerate too; otherwise every off-median value would score
/// infinity.
double ScoreMad(double v, const std::vector<double>& values);

/// \brief Result of a max-score scan over a column.
struct MaxScore {
  double score = 0.0;   ///< largest outlier-ness score in the column
  size_t index = 0;     ///< position (within `values`) of that value
  bool valid = false;   ///< false when the column has < 3 numeric values
};

/// \brief max-MAD metric function of Eq. 10: the most outlying value's
/// MAD-score, plus which value it is (that value is the natural
/// perturbation candidate).
MaxScore MaxMadScore(const std::vector<double>& values);

/// \brief Same scan using SD-scores (the Max-SD baseline).
MaxScore MaxSdScore(const std::vector<double>& values);

/// \brief Reference implementations of the max-score scans: the original
/// per-element scorer loop, quadratic but trivially correct. The fast
/// paths above (hoisted statistics + SIMD argmax) must return bit-
/// identical (score, index, valid) on every input; property tests pin
/// the equivalence.
MaxScore MaxMadScoreReference(const std::vector<double>& values);
MaxScore MaxSdScoreReference(const std::vector<double>& values);

/// \brief True when a log transform "better fits" the column (§3.1
/// featurization (3)): all values positive and the log-domain skewness is
/// materially smaller in magnitude than the linear-domain skewness.
bool LogTransformFitsBetter(const std::vector<double>& values);

/// \brief Sample skewness (Fisher-Pearson); 0 when undefined.
double Skewness(const std::vector<double>& values);

}  // namespace unidetect
