#include "metrics/metric_functions.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "metrics/edit_distance.h"
#include "util/string_util.h"

namespace unidetect {

UrProfile ComputeUrProfile(const Column& column) {
  UrProfile out;
  std::unordered_map<std::string_view, size_t> first_row;
  size_t total = 0;
  for (size_t row = 0; row < column.size(); ++row) {
    std::string_view cell = Trim(column.cell(row));
    if (cell.empty()) continue;
    ++total;
    auto [it, inserted] = first_row.emplace(cell, row);
    if (!inserted) out.duplicate_rows.push_back(row);
  }
  if (total == 0) return out;
  out.valid = true;
  const double distinct = static_cast<double>(first_row.size());
  out.ur = distinct / static_cast<double>(total);
  const double remaining =
      static_cast<double>(total - out.duplicate_rows.size());
  out.ur_perturbed = remaining > 0 ? distinct / remaining : 1.0;
  return out;
}

namespace {

struct DistinctValue {
  std::string_view value;
  size_t first_row;
};

// Closest pair among `values`, optionally excluding one index.
struct ClosestPair {
  size_t dist = std::numeric_limits<size_t>::max();
  size_t i = 0;
  size_t j = 0;
};

ClosestPair FindClosestPair(const std::vector<DistinctValue>& values,
                            size_t cap, size_t exclude) {
  ClosestPair best;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == exclude) continue;
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (j == exclude) continue;
      const size_t bound = best.dist == std::numeric_limits<size_t>::max()
                               ? cap
                               : std::min(cap, best.dist);
      const size_t d =
          BoundedEditDistance(values[i].value, values[j].value, bound);
      if (d < best.dist) {
        best.dist = d;
        best.i = i;
        best.j = j;
        if (d == 1) return best;  // cannot do better for distinct values
      }
    }
  }
  return best;
}

double AvgDifferingTokenLength(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = TokenizeCell(a);
  std::vector<std::string> tb = TokenizeCell(b);
  // Multiset difference in both directions.
  std::map<std::string, int> counts;
  for (const auto& t : ta) counts[t]++;
  for (const auto& t : tb) counts[t]--;
  double total_len = 0.0;
  size_t n = 0;
  for (const auto& [token, count] : counts) {
    if (count == 0) continue;
    total_len += static_cast<double>(token.size()) *
                 static_cast<double>(std::abs(count));
    n += static_cast<size_t>(std::abs(count));
  }
  if (n > 0) return total_len / static_cast<double>(n);
  // Values differ only in separators; fall back to mean token length.
  total_len = 0.0;
  n = 0;
  for (const auto& t : ta) {
    total_len += static_cast<double>(t.size());
    ++n;
  }
  for (const auto& t : tb) {
    total_len += static_cast<double>(t.size());
    ++n;
  }
  return n > 0 ? total_len / static_cast<double>(n)
               : static_cast<double>(a.size() + b.size()) / 2.0;
}

}  // namespace

MpdProfile ComputeMpdProfile(const Column& column, const MpdOptions& options) {
  MpdProfile out;
  const ColumnType type = column.type();
  if (type == ColumnType::kInteger || type == ColumnType::kFloat ||
      type == ColumnType::kDate) {
    return out;  // numeric-ish columns are not spelling targets
  }

  std::vector<DistinctValue> values;
  std::unordered_map<std::string_view, size_t> seen;
  for (size_t row = 0; row < column.size(); ++row) {
    std::string_view cell = Trim(column.cell(row));
    if (cell.empty()) continue;
    if (seen.emplace(cell, row).second) {
      values.push_back({cell, row});
      if (values.size() >= options.max_values) break;
    }
  }
  if (values.size() < 3) return out;

  const size_t no_exclude = std::numeric_limits<size_t>::max();
  const ClosestPair closest =
      FindClosestPair(values, options.distance_cap, no_exclude);
  if (closest.dist == std::numeric_limits<size_t>::max()) return out;

  out.valid = true;
  out.mpd = std::min(closest.dist, options.distance_cap + 1);
  out.row_a = values[closest.i].first_row;
  out.row_b = values[closest.j].first_row;
  out.value_a = std::string(values[closest.i].value);
  out.value_b = std::string(values[closest.j].value);
  out.avg_diff_token_length =
      AvgDifferingTokenLength(values[closest.i].value, values[closest.j].value);

  // Perturbation: drop whichever endpoint of the closest pair makes the
  // remaining column "cleanest" (largest perturbed MPD => smallest LR).
  const ClosestPair without_i =
      FindClosestPair(values, options.distance_cap, closest.i);
  const ClosestPair without_j =
      FindClosestPair(values, options.distance_cap, closest.j);
  const size_t mpd_i = std::min(without_i.dist, options.distance_cap + 1);
  const size_t mpd_j = std::min(without_j.dist, options.distance_cap + 1);
  if (mpd_i >= mpd_j) {
    out.mpd_perturbed = mpd_i;
    out.drop_row = out.row_a;
  } else {
    out.mpd_perturbed = mpd_j;
    out.drop_row = out.row_b;
  }
  return out;
}

FrProfile ComputeFrProfile(const Column& lhs, const Column& rhs) {
  FrProfile out;
  const size_t n = std::min(lhs.size(), rhs.size());
  if (n == 0) return out;

  // Group rows by lhs value; within each group count distinct rhs values.
  struct Group {
    std::unordered_map<std::string_view, std::vector<size_t>> rhs_rows;
  };
  std::unordered_map<std::string_view, Group> groups;
  size_t used_rows = 0;
  for (size_t row = 0; row < n; ++row) {
    std::string_view l = Trim(lhs.cell(row));
    std::string_view r = Trim(rhs.cell(row));
    if (l.empty() || r.empty()) continue;
    ++used_rows;
    groups[l].rhs_rows[r].push_back(row);
  }
  if (used_rows == 0) return out;

  // Degenerate candidates where an FD is trivially true or meaningless:
  // lhs (almost) all-distinct pairs carry no repeat evidence, and a
  // single-group lhs is a constant column.
  if (groups.size() <= 1) return out;

  size_t distinct_pairs = 0;
  size_t conforming_pairs = 0;
  for (auto& [l, group] : groups) {
    distinct_pairs += group.rhs_rows.size();
    if (group.rhs_rows.size() == 1) {
      conforming_pairs += 1;
      continue;
    }
    ++out.violating_groups;
    // Keep the majority rhs (ties: the one appearing first); all rows of
    // the minority rhs values form the perturbation set.
    size_t best_support = 0;
    size_t best_first_row = std::numeric_limits<size_t>::max();
    std::string_view best_rhs;
    for (const auto& [r, rows] : group.rhs_rows) {
      if (rows.size() > best_support ||
          (rows.size() == best_support && rows.front() < best_first_row)) {
        best_support = rows.size();
        best_first_row = rows.front();
        best_rhs = r;
      }
    }
    for (const auto& [r, rows] : group.rhs_rows) {
      if (r == best_rhs) continue;
      out.violating_rows.insert(out.violating_rows.end(), rows.begin(),
                                rows.end());
    }
  }
  out.valid = true;
  out.fr = static_cast<double>(conforming_pairs) /
           static_cast<double>(distinct_pairs);
  // Dropping all minority rows leaves exactly one rhs per lhs group.
  out.fr_perturbed = 1.0;
  std::sort(out.violating_rows.begin(), out.violating_rows.end());
  return out;
}

}  // namespace unidetect
