#include "metrics/metric_functions.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "metrics/edit_distance.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace unidetect {

UrProfile ComputeUrProfile(const Column& column) {
  UrProfile out;
  std::unordered_map<std::string_view, size_t> first_row;
  size_t total = 0;
  for (size_t row = 0; row < column.size(); ++row) {
    std::string_view cell = Trim(column.cell(row));
    if (cell.empty()) continue;
    ++total;
    auto [it, inserted] = first_row.emplace(cell, row);
    if (!inserted) out.duplicate_rows.push_back(row);
  }
  if (total == 0) return out;
  out.valid = true;
  const double distinct = static_cast<double>(first_row.size());
  out.ur = distinct / static_cast<double>(total);
  const double remaining =
      static_cast<double>(total - out.duplicate_rows.size());
  out.ur_perturbed = remaining > 0 ? distinct / remaining : 1.0;
  return out;
}

namespace {

struct DistinctValue {
  std::string_view value;
  size_t first_row;
};

std::vector<DistinctValue> CollectDistinctValues(const Column& column,
                                                 const MpdOptions& options) {
  std::vector<DistinctValue> values;
  std::unordered_map<std::string_view, size_t> seen;
  for (size_t row = 0; row < column.size(); ++row) {
    std::string_view cell = Trim(column.cell(row));
    if (cell.empty()) continue;
    if (seen.emplace(cell, row).second) {
      values.push_back({cell, row});
      if (values.size() >= options.max_values) break;
    }
  }
  return values;
}

// Closest pair among `values`, optionally excluding one index.
struct ClosestPair {
  size_t dist = std::numeric_limits<size_t>::max();
  size_t i = 0;
  size_t j = 0;
};

// The seed implementation of the bounded distance (banded DP with per-call
// allocations), kept verbatim so ComputeMpdProfileReference benchmarks the
// pre-optimization cost and property tests have an independent oracle.
size_t ReferenceBoundedEditDistance(std::string_view a, std::string_view b,
                                    size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m - n > bound) return bound + 1;
  if (n == 0) return m;

  const size_t kInf = bound + 1;
  std::vector<size_t> row(n + 1, kInf);
  std::vector<size_t> next(n + 1, kInf);
  for (size_t i = 0; i <= std::min(n, bound); ++i) row[i] = i;

  for (size_t j = 1; j <= m; ++j) {
    std::fill(next.begin(), next.end(), kInf);
    const size_t lo = j > bound ? j - bound : 0;
    const size_t hi = std::min(n, j + bound);
    if (lo == 0) next[0] = j <= bound ? j : kInf;
    size_t row_min = next[0];
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      const size_t sub = row[i - 1] == kInf
                             ? kInf
                             : row[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      const size_t del = row[i] == kInf ? kInf : row[i] + 1;
      const size_t ins = next[i - 1] == kInf ? kInf : next[i - 1] + 1;
      next[i] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, next[i]);
    }
    if (row_min > bound) return bound + 1;
    std::swap(row, next);
  }
  return std::min(row[n], kInf);
}

ClosestPair FindClosestPair(const std::vector<DistinctValue>& values,
                            size_t cap, size_t exclude) {
  ClosestPair best;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == exclude) continue;
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (j == exclude) continue;
      const size_t bound = best.dist == std::numeric_limits<size_t>::max()
                               ? cap
                               : std::min(cap, best.dist);
      const size_t d =
          ReferenceBoundedEditDistance(values[i].value, values[j].value, bound);
      if (d < best.dist) {
        best.dist = d;
        best.i = i;
        best.j = j;
        if (d == 1) return best;  // cannot do better for distinct values
      }
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Single-pass closest-pair search.
//
// One scan over all value pairs yields the closest pair AND the closest
// distances avoiding each of its endpoints (the two perturbed MPDs),
// replacing the three full scans of the reference implementation.
//
// Correctness of the single pass rests on a 4-tracker invariant. Besides
// the running best pair B = (bi, bj), three buckets hold the minimum
// distance among scanned pairs classified RELATIVE TO THE CURRENT BEST:
// pairs touching bi only, pairs touching bj only, and pairs disjoint from
// both. When B is dethroned, the (at most four) retained argmin pairs are
// reclassified against the new endpoints. A pair dropped from a bucket
// always loses to a same-bucket pair of smaller-or-equal distance, and
// buckets separate "touches v" from "avoids v" whenever v is an endpoint
// of the current best — which is exactly when losing an avoids-v pair to
// a touches-v pair could corrupt the final answer. Hence at every moment
// the minimum over scanned pairs avoiding bi (resp. bj) is attained by a
// retained candidate, and at the end of the scan the two exclusion minima
// are exact. (The property test in metric_functions_test.cc checks this
// against the three-scan reference on randomized columns.)
//
// All distances are clamped to cap + 1, matching the adaptive bounds of
// the reference scans. The best pair additionally tracks the
// lexicographically-smallest (i, j) among ties, which is the pair the
// reference's in-order strict-improvement scan selects.

constexpr size_t kNoPair = std::numeric_limits<size_t>::max();

struct PairTracker {
  size_t dist;
  size_t i = kNoPair;
  size_t j = kNoPair;
};

struct SinglePassResult {
  ClosestPair best;
  size_t excl_i = 0;  ///< min distance over pairs avoiding best.i (clamped)
  size_t excl_j = 0;  ///< min distance over pairs avoiding best.j (clamped)
};

// 64-bit character-presence signature; folding via `c & 63` only merges
// bits, which can weaken but never invalidate the derived lower bound.
uint64_t CharSignature(std::string_view s) {
  uint64_t sig = 0;
  for (const char c : s) sig |= uint64_t{1} << (static_cast<unsigned char>(c) & 63);
  return sig;
}

// Lower bound on the edit distance: every unit edit can eliminate at most
// one character present in a but absent from b, and introduce at most one
// present in b but absent from a.
size_t SignatureLowerBound(uint64_t sa, uint64_t sb) {
  const auto a_only = static_cast<size_t>(std::popcount(sa & ~sb));
  const auto b_only = static_cast<size_t>(std::popcount(sb & ~sa));
  return std::max(a_only, b_only);
}

SinglePassResult SinglePassClosestPair(const std::vector<DistinctValue>& values,
                                       size_t cap) {
  const size_t n = values.size();
  const size_t far = cap + 1;

  std::vector<uint64_t> sig(n);
  std::vector<size_t> len(n);
  for (size_t v = 0; v < n; ++v) {
    sig[v] = CharSignature(values[v].value);
    len[v] = values[v].value.size();
  }

  // Length-sorted processing: similar-length pairs (the likely close ones)
  // are scanned first, so the adaptive thresholds collapse early and the
  // length-gap prefilter can break out of the inner loop.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return len[a] != len[b] ? len[a] < len[b] : a < b;
  });

  // When no pair is within cap, every pair clamps to cap + 1 and the
  // reference scan reports the first pair it evaluated: seed the best
  // tracker with exactly that outcome.
  ClosestPair best{far, 0, 1};
  PairTracker touch_i{far};    // pairs sharing best.i only
  PairTracker touch_j{far};    // pairs sharing best.j only
  PairTracker disjoint{far};   // pairs avoiding both endpoints

  EditDistanceScratch scratch;

  // Classifies (i, j, d) into the bucket it belongs to under the current
  // best and records it on improvement.
  const auto bucket_of = [&](size_t i, size_t j) -> PairTracker& {
    const bool on_i = i == best.i || j == best.i;
    const bool on_j = i == best.j || j == best.j;
    return on_i ? touch_i : (on_j ? touch_j : disjoint);
  };
  const auto offer_to_bucket = [&](size_t i, size_t j, size_t d) {
    PairTracker& bucket = bucket_of(i, j);
    if (d < bucket.dist) bucket = {d, i, j};
  };

  // Materialize lengths and signatures in scan (length-sorted) order so
  // the SIMD prefilter reads contiguous arrays. Lengths clamp to int32;
  // clamping can only weaken the prefilter (admit extra candidates), and
  // every survivor still goes through the exact per-pair gates below.
  std::vector<int32_t> ord_len(n);
  std::vector<uint64_t> ord_sig(n);
  for (size_t p = 0; p < n; ++p) {
    ord_len[p] = static_cast<int32_t>(std::min(
        len[order[p]], static_cast<size_t>(std::numeric_limits<int32_t>::max())));
    ord_sig[p] = sig[order[p]];
  }

  const auto trackers_relevant = [&] {
    // Largest distance any tracker still cares about: the best tracker
    // needs exact values up to its current distance (ties included,
    // for the lexicographic rule), the buckets up to one below theirs.
    const size_t bucket_cap =
        std::max({touch_i.dist, touch_j.dist, disjoint.dist});
    return std::max(std::min(best.dist, cap),
                    bucket_cap == 0 ? size_t{0} : bucket_cap - 1);
  };

  for (size_t a = 0; a < n; ++a) {
    const size_t va = order[a];
    const int32_t len_a = ord_len[a];
    const uint64_t sig_a = ord_sig[a];
    bool done_a = false;
    size_t b = a + 1;
    // Candidates are masked 64 at a time through the SIMD length/
    // signature gates at the chunk-entry `relevant` bound, then only
    // survivors run the exact scalar per-pair logic. Sound because
    // `relevant` is non-increasing while no dethrone happens (buckets
    // only shrink), so a chunk-entry bound over-approximates every
    // later per-pair `need` in the chunk: masked-out pairs are exactly
    // pairs the sequential scan would have skipped anyway. A dethrone
    // resets the buckets (the bound can jump back up), so the rest of
    // the chunk is re-masked from the pair after it.
    while (b < n && !done_a) {
      const size_t relevant_entry = trackers_relevant();
      if (static_cast<size_t>(ord_len[b] - len_a) > relevant_entry) {
        break;  // later b's are even longer
      }
      const size_t chunk = std::min<size_t>(64, n - b);
      const int32_t bound = static_cast<int32_t>(std::min(
          relevant_entry,
          static_cast<size_t>(std::numeric_limits<int32_t>::max())));
      uint64_t mask = simd::MpdPrefilterMask(ord_len.data() + b,
                                             ord_sig.data() + b, chunk, len_a,
                                             sig_a, bound);
      size_t next_b = b + chunk;
      while (mask != 0) {
        const size_t bidx = b + static_cast<size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        const size_t vb = order[bidx];
        const size_t relevant = trackers_relevant();
        const size_t gap = len[vb] - len[va];
        if (gap > relevant) {
          // Skipped candidates between survivors never update trackers,
          // so `relevant` is unchanged since the previous evaluation and
          // gap is non-decreasing: the sequential scan would have broken
          // at or before this pair.
          done_a = true;
          break;
        }

        const size_t i = std::min(va, vb);
        const size_t j = std::max(va, vb);
        PairTracker& bucket = bucket_of(i, j);
        const size_t need =
            std::max(std::min(best.dist, cap),
                     bucket.dist == 0 ? size_t{0} : bucket.dist - 1);
        if (gap > need) continue;
        if (SignatureLowerBound(sig[va], sig[vb]) > need) continue;

        const size_t d = BoundedEditDistance(values[va].value,
                                             values[vb].value, need, &scratch);
        if (d > need) continue;  // beyond every tracker's interest

        if (d < best.dist ||
            (d == best.dist &&
             (i < best.i || (i == best.i && j < best.j)))) {
          // Dethrone: the old best and the bucket argmins are the only
          // candidates that can seed the buckets of the new best.
          const ClosestPair old_best = best;
          const PairTracker old[3] = {touch_i, touch_j, disjoint};
          best = {d, i, j};
          touch_i = {far};
          touch_j = {far};
          disjoint = {far};
          if (old_best.dist < far) {
            offer_to_bucket(old_best.i, old_best.j, old_best.dist);
          }
          for (const PairTracker& t : old) {
            if (t.i != kNoPair) offer_to_bucket(t.i, t.j, t.dist);
          }
          next_b = bidx + 1;  // stale mask: re-filter the rest of the chunk
          break;
        }
        offer_to_bucket(i, j, d);
      }
      b = next_b;
    }
  }

  SinglePassResult out;
  out.best = best;
  out.excl_i = std::min(disjoint.dist, touch_j.dist);
  out.excl_j = std::min(disjoint.dist, touch_i.dist);
  return out;
}

double AvgDifferingTokenLength(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = TokenizeCell(a);
  std::vector<std::string> tb = TokenizeCell(b);
  // Multiset difference in both directions.
  std::map<std::string, int> counts;
  for (const auto& t : ta) counts[t]++;
  for (const auto& t : tb) counts[t]--;
  double total_len = 0.0;
  size_t n = 0;
  for (const auto& [token, count] : counts) {
    if (count == 0) continue;
    total_len += static_cast<double>(token.size()) *
                 static_cast<double>(std::abs(count));
    n += static_cast<size_t>(std::abs(count));
  }
  if (n > 0) return total_len / static_cast<double>(n);
  // Values differ only in separators; fall back to mean token length.
  total_len = 0.0;
  n = 0;
  for (const auto& t : ta) {
    total_len += static_cast<double>(t.size());
    ++n;
  }
  for (const auto& t : tb) {
    total_len += static_cast<double>(t.size());
    ++n;
  }
  return n > 0 ? total_len / static_cast<double>(n)
               : static_cast<double>(a.size() + b.size()) / 2.0;
}

bool IsMpdEligible(const Column& column) {
  const ColumnType type = column.type();
  // Numeric-ish columns are not spelling targets.
  return type != ColumnType::kInteger && type != ColumnType::kFloat &&
         type != ColumnType::kDate;
}

}  // namespace

MpdProfile ComputeMpdProfile(const Column& column, const MpdOptions& options) {
  MpdProfile out;
  if (!IsMpdEligible(column)) return out;

  const std::vector<DistinctValue> values =
      CollectDistinctValues(column, options);
  if (values.size() < 3) return out;

  const SinglePassResult found =
      SinglePassClosestPair(values, options.distance_cap);

  out.valid = true;
  out.mpd = std::min(found.best.dist, options.distance_cap + 1);
  out.row_a = values[found.best.i].first_row;
  out.row_b = values[found.best.j].first_row;
  out.value_a = std::string(values[found.best.i].value);
  out.value_b = std::string(values[found.best.j].value);
  out.avg_diff_token_length = AvgDifferingTokenLength(
      values[found.best.i].value, values[found.best.j].value);

  // Perturbation: drop whichever endpoint of the closest pair makes the
  // remaining column "cleanest" (largest perturbed MPD => smallest LR).
  const size_t mpd_i = std::min(found.excl_i, options.distance_cap + 1);
  const size_t mpd_j = std::min(found.excl_j, options.distance_cap + 1);
  if (mpd_i >= mpd_j) {
    out.mpd_perturbed = mpd_i;
    out.drop_row = out.row_a;
  } else {
    out.mpd_perturbed = mpd_j;
    out.drop_row = out.row_b;
  }
  return out;
}

MpdProfile ComputeMpdProfileReference(const Column& column,
                                      const MpdOptions& options) {
  MpdProfile out;
  if (!IsMpdEligible(column)) return out;

  const std::vector<DistinctValue> values =
      CollectDistinctValues(column, options);
  if (values.size() < 3) return out;

  const size_t no_exclude = std::numeric_limits<size_t>::max();
  const ClosestPair closest =
      FindClosestPair(values, options.distance_cap, no_exclude);
  if (closest.dist == std::numeric_limits<size_t>::max()) return out;

  out.valid = true;
  out.mpd = std::min(closest.dist, options.distance_cap + 1);
  out.row_a = values[closest.i].first_row;
  out.row_b = values[closest.j].first_row;
  out.value_a = std::string(values[closest.i].value);
  out.value_b = std::string(values[closest.j].value);
  out.avg_diff_token_length =
      AvgDifferingTokenLength(values[closest.i].value, values[closest.j].value);

  const ClosestPair without_i =
      FindClosestPair(values, options.distance_cap, closest.i);
  const ClosestPair without_j =
      FindClosestPair(values, options.distance_cap, closest.j);
  const size_t mpd_i = std::min(without_i.dist, options.distance_cap + 1);
  const size_t mpd_j = std::min(without_j.dist, options.distance_cap + 1);
  if (mpd_i >= mpd_j) {
    out.mpd_perturbed = mpd_i;
    out.drop_row = out.row_a;
  } else {
    out.mpd_perturbed = mpd_j;
    out.drop_row = out.row_b;
  }
  return out;
}

FrProfile ComputeFrProfile(const Column& lhs, const Column& rhs) {
  FrProfile out;
  const size_t n = std::min(lhs.size(), rhs.size());
  if (n == 0) return out;

  // Group rows by lhs value; within each group count distinct rhs values.
  struct Group {
    std::unordered_map<std::string_view, std::vector<size_t>> rhs_rows;
  };
  std::unordered_map<std::string_view, Group> groups;
  size_t used_rows = 0;
  for (size_t row = 0; row < n; ++row) {
    std::string_view l = Trim(lhs.cell(row));
    std::string_view r = Trim(rhs.cell(row));
    if (l.empty() || r.empty()) continue;
    ++used_rows;
    groups[l].rhs_rows[r].push_back(row);
  }
  if (used_rows == 0) return out;

  // Degenerate candidates where an FD is trivially true or meaningless:
  // lhs (almost) all-distinct pairs carry no repeat evidence, and a
  // single-group lhs is a constant column.
  if (groups.size() <= 1) return out;

  size_t distinct_pairs = 0;
  size_t conforming_pairs = 0;
  for (auto& [l, group] : groups) {
    distinct_pairs += group.rhs_rows.size();
    if (group.rhs_rows.size() == 1) {
      conforming_pairs += 1;
      continue;
    }
    ++out.violating_groups;
    // Keep the majority rhs (ties: the one appearing first); all rows of
    // the minority rhs values form the perturbation set.
    size_t best_support = 0;
    size_t best_first_row = std::numeric_limits<size_t>::max();
    std::string_view best_rhs;
    for (const auto& [r, rows] : group.rhs_rows) {
      if (rows.size() > best_support ||
          (rows.size() == best_support && rows.front() < best_first_row)) {
        best_support = rows.size();
        best_first_row = rows.front();
        best_rhs = r;
      }
    }
    for (const auto& [r, rows] : group.rhs_rows) {
      if (r == best_rhs) continue;
      out.violating_rows.insert(out.violating_rows.end(), rows.begin(),
                                rows.end());
    }
  }
  out.valid = true;
  out.fr = static_cast<double>(conforming_pairs) /
           static_cast<double>(distinct_pairs);
  // Dropping all minority rows leaves exactly one rhs per lhs group.
  out.fr_perturbed = 1.0;
  std::sort(out.violating_rows.begin(), out.violating_rows.end());
  return out;
}

}  // namespace unidetect
