// Levenshtein edit distance. Three implementations share one contract:
//
//   EditDistance          -- classic rolling-row DP, O(|a| * |b|).
//   BoundedEditDistance   -- early-exit variant: Myers bit-parallel scan
//                            (O(max(|a|,|b|)) word operations) when the
//                            shorter string fits in one 64-bit word,
//                            otherwise a banded DP of width 2*bound+1.
//
// The bounded variant powers the O(n^2) closest-pair loop behind the MPD
// metric, so it must not allocate per call: callers inside hot loops pass
// an EditDistanceScratch they own, and the scratch-less overload falls
// back to a thread_local buffer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace unidetect {

/// \brief Reusable work space for BoundedEditDistance.
///
/// Holds the two DP rows of the banded fallback and the 256-entry
/// pattern-match table of the Myers bit-parallel kernel. The table is
/// kept all-zero between calls (the kernel clears exactly the entries it
/// set), so reuse costs nothing.
struct EditDistanceScratch {
  std::vector<size_t> row;
  std::vector<size_t> next;
  uint64_t peq[256] = {};
};

/// \brief Levenshtein distance (unit-cost insert/delete/substitute).
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief Levenshtein distance with early exit: returns `bound + 1` as
/// soon as the true distance provably exceeds `bound`.
///
/// Allocation-free: all per-call state lives in `*scratch`.
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound, EditDistanceScratch* scratch);

/// \brief Convenience overload using a thread_local scratch buffer.
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound);

}  // namespace unidetect
