// Levenshtein edit distance, with the banded variant used to compute
// minimum pair-wise distances over whole columns efficiently.

#pragma once

#include <cstddef>
#include <string_view>

namespace unidetect {

/// \brief Levenshtein distance (unit-cost insert/delete/substitute).
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief Levenshtein distance with early exit: returns `bound + 1` as
/// soon as the true distance provably exceeds `bound`.
///
/// Runs the banded DP of width 2*bound+1; O(bound * max(|a|,|b|)).
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound);

}  // namespace unidetect
