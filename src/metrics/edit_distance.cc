#include "metrics/edit_distance.h"

#include <algorithm>
#include <vector>

namespace unidetect {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;

  std::vector<size_t> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      const size_t cur = row[i];
      const size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
      prev_diag = cur;
    }
  }
  return row[n];
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m - n > bound) return bound + 1;
  if (n == 0) return m;

  const size_t kInf = bound + 1;
  std::vector<size_t> row(n + 1, kInf);
  std::vector<size_t> next(n + 1, kInf);
  for (size_t i = 0; i <= std::min(n, bound); ++i) row[i] = i;

  for (size_t j = 1; j <= m; ++j) {
    std::fill(next.begin(), next.end(), kInf);
    // Cells outside the diagonal band [j - bound, j + bound] can never
    // come back under the bound, so only this window is computed.
    const size_t lo = j > bound ? j - bound : 0;
    const size_t hi = std::min(n, j + bound);
    if (lo == 0) next[0] = j <= bound ? j : kInf;
    size_t row_min = next[0];
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      const size_t sub = row[i - 1] == kInf
                             ? kInf
                             : row[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      const size_t del = row[i] == kInf ? kInf : row[i] + 1;
      const size_t ins = next[i - 1] == kInf ? kInf : next[i - 1] + 1;
      next[i] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, next[i]);
    }
    if (row_min > bound) return bound + 1;
    std::swap(row, next);
  }
  return std::min(row[n], kInf);
}

}  // namespace unidetect
