#include "metrics/edit_distance.h"

#include <algorithm>

namespace unidetect {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;

  std::vector<size_t> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      const size_t cur = row[i];
      const size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
      prev_diag = cur;
    }
  }
  return row[n];
}

namespace {

// Myers' bit-parallel Levenshtein scan (Hyyrö's formulation). Pattern `a`
// must fit one machine word (|a| <= 64); runs in |b| word operations,
// independent of the distance. Returns the exact distance.
size_t MyersEditDistance(std::string_view a, std::string_view b,
                         uint64_t peq[256]) {
  const size_t n = a.size();
  for (const char c : a) {
    peq[static_cast<unsigned char>(c)] = 0;  // defensive: table must be clean
  }
  for (size_t i = 0; i < n; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= uint64_t{1} << i;
  }

  const uint64_t mask = uint64_t{1} << (n - 1);
  uint64_t vp = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  uint64_t vn = 0;
  size_t score = n;
  for (const char c : b) {
    const uint64_t pm = peq[static_cast<unsigned char>(c)];
    const uint64_t d0 = (((pm & vp) + vp) ^ vp) | pm | vn;
    uint64_t hp = vn | ~(d0 | vp);
    uint64_t hn = vp & d0;
    if (hp & mask) ++score;
    if (hn & mask) --score;
    hp = (hp << 1) | 1;
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = hp & d0;
  }

  for (const char c : a) peq[static_cast<unsigned char>(c)] = 0;
  return score;
}

}  // namespace

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound, EditDistanceScratch* scratch) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m - n > bound) return bound + 1;
  if (n == 0) return m;

  if (n <= 64) {
    const size_t d = MyersEditDistance(a, b, scratch->peq);
    return d <= bound ? d : bound + 1;
  }

  const size_t kInf = bound + 1;
  std::vector<size_t>& row = scratch->row;
  std::vector<size_t>& next = scratch->next;
  row.assign(n + 1, kInf);
  next.assign(n + 1, kInf);
  for (size_t i = 0; i <= std::min(n, bound); ++i) row[i] = i;

  for (size_t j = 1; j <= m; ++j) {
    std::fill(next.begin(), next.end(), kInf);
    // Cells outside the diagonal band [j - bound, j + bound] can never
    // come back under the bound, so only this window is computed.
    const size_t lo = j > bound ? j - bound : 0;
    const size_t hi = std::min(n, j + bound);
    if (lo == 0) next[0] = j <= bound ? j : kInf;
    size_t row_min = next[0];
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      const size_t sub = row[i - 1] == kInf
                             ? kInf
                             : row[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      const size_t del = row[i] == kInf ? kInf : row[i] + 1;
      const size_t ins = next[i - 1] == kInf ? kInf : next[i - 1] + 1;
      next[i] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, next[i]);
    }
    if (row_min > bound) return bound + 1;
    std::swap(row, next);
  }
  return std::min(row[n], kInf);
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound) {
  thread_local EditDistanceScratch scratch;
  return BoundedEditDistance(a, b, bound, &scratch);
}

}  // namespace unidetect
