#include "metrics/dispersion.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace unidetect {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t n = values.size();
  const size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (n % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double Mad(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double med = Median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - med));
  return Median(std::move(deviations));
}

namespace {
// Linear-interpolated quantile of a sorted vector.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

double Iqr(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, 0.75) - SortedQuantile(values, 0.25);
}

double ScoreSd(double v, const std::vector<double>& values) {
  const double sd = StdDev(values);
  if (sd <= 0.0) return 0.0;
  return std::fabs(v - Mean(values)) / sd;
}

double ScoreMad(double v, const std::vector<double>& values) {
  const double med = Median(std::vector<double>(values));
  double mad = Mad(values);
  if (mad <= 0.0) {
    // 1.349 makes IQR consistent with SD for a normal distribution; the
    // same constant keeps the fallback score on a comparable scale.
    const double iqr = Iqr(std::vector<double>(values));
    if (iqr <= 0.0) return 0.0;
    mad = iqr / 1.349;
  }
  return std::fabs(v - med) / mad;
}

namespace {
// The original O(n^2) scan: re-derives the column statistics for every
// element through the public per-value scorers. Kept verbatim as the
// oracle for the hoisted + SIMD fast paths below (tests/simd_test.cc).
MaxScore MaxScoreWith(const std::vector<double>& values,
                      double (*scorer)(double, const std::vector<double>&)) {
  MaxScore out;
  if (values.size() < 3) return out;
  for (size_t i = 0; i < values.size(); ++i) {
    const double s = scorer(values[i], values);
    if (!out.valid || s > out.score) {
      out.valid = true;
      out.score = s;
      out.index = i;
    }
  }
  return out;
}

// All scores share one (center, denom) pair, so the scan is the argmax
// kernel over |v - center| / denom — the exact expression both scorers
// evaluate, giving bit-identical scores to the reference.
MaxScore ArgMaxWith(const std::vector<double>& values, double center,
                    double denom) {
  const simd::ArgMaxResult best =
      simd::ArgMaxAbsDeviation(values.data(), values.size(), center, denom);
  MaxScore out;
  out.valid = true;
  out.score = best.score;
  out.index = best.index;
  return out;
}

// A degenerate denominator scores every element 0, and the sequential
// scan seeds on index 0 and never strictly improves.
MaxScore AllZeroScores() {
  MaxScore out;
  out.valid = true;
  return out;
}
}  // namespace

MaxScore MaxMadScore(const std::vector<double>& values) {
  if (values.size() < 3) return MaxScore{};
  // Hoist the column statistics out of the scan: ScoreMad recomputes
  // median/MAD/IQR per element even though they only depend on the
  // column, which made the original scan O(n^2 log n).
  const double med = Median(std::vector<double>(values));
  double mad = Mad(values);
  if (mad <= 0.0) {
    const double iqr = Iqr(std::vector<double>(values));
    if (iqr <= 0.0) return AllZeroScores();
    mad = iqr / 1.349;
  }
  return ArgMaxWith(values, med, mad);
}

MaxScore MaxSdScore(const std::vector<double>& values) {
  if (values.size() < 3) return MaxScore{};
  const double sd = StdDev(values);
  if (sd <= 0.0) return AllZeroScores();
  return ArgMaxWith(values, Mean(values), sd);
}

MaxScore MaxMadScoreReference(const std::vector<double>& values) {
  return MaxScoreWith(values, &ScoreMad);
}

MaxScore MaxSdScoreReference(const std::vector<double>& values) {
  return MaxScoreWith(values, &ScoreSd);
}

double Skewness(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 3) return 0.0;
  const double mean = Mean(values);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

bool LogTransformFitsBetter(const std::vector<double>& values) {
  if (values.size() < 3) return false;
  std::vector<double> logs;
  logs.reserve(values.size());
  for (double v : values) {
    if (v <= 0.0) return false;
    logs.push_back(std::log(v));
  }
  return std::fabs(Skewness(logs)) + 0.25 < std::fabs(Skewness(values));
}

}  // namespace unidetect
