// Column: an ordered list of cell strings with lazily computed type and
// numeric views. Columns are the unit Uni-Detect reasons about.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "table/types.h"

namespace unidetect {

/// \brief A single table column.
///
/// Cells are stored as strings (tables in the wild are untyped text);
/// numeric interpretation and the dominant ColumnType are derived on
/// demand and cached. Mutation invalidates the caches.
class Column {
 public:
  Column() = default;
  Column(std::string name, std::vector<std::string> cells)
      : name_(std::move(name)), cells_(std::move(cells)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }
  const std::string& cell(size_t row) const { return cells_[row]; }
  const std::vector<std::string>& cells() const { return cells_; }

  /// \brief Replaces one cell, invalidating cached derived state.
  void SetCell(size_t row, std::string value);

  /// \brief Appends a cell, invalidating cached derived state.
  void Append(std::string value);

  /// \brief Dominant type: the most frequent non-empty ValueType, with a
  /// tie broken toward the more general type (string > mixed > float >
  /// int). A column of ints with a few floats is kFloat; a column of
  /// numbers with >20% strings is kString.
  ColumnType type() const;

  /// \brief Numeric values of all cells that parse as numbers, in row
  /// order. Rows that do not parse are skipped.
  const std::vector<double>& NumericValues() const;

  /// \brief Row indices corresponding to NumericValues(), aligned 1:1.
  const std::vector<size_t>& NumericRows() const;

  /// \brief Fraction of non-empty cells that parse as numbers.
  double NumericFraction() const;

  /// \brief Number of distinct cell strings.
  size_t NumDistinct() const;

  /// \brief Returns a copy with the given rows removed (the perturbation
  /// primitive D \ O from Definition 2). Row indices may be unsorted.
  Column WithoutRows(const std::vector<size_t>& rows) const;

 private:
  void InvalidateCaches() const;
  void EnsureNumericCache() const;

  std::string name_;
  std::vector<std::string> cells_;

  // Lazily computed caches.
  mutable bool type_cached_ = false;
  mutable ColumnType type_ = ColumnType::kUnknown;
  mutable bool numeric_cached_ = false;
  mutable std::vector<double> numeric_values_;
  mutable std::vector<size_t> numeric_rows_;
  mutable size_t non_empty_count_ = 0;
};

}  // namespace unidetect
