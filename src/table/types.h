// Value and column type classification used by Uni-Detect featurization.
//
// The paper (Sections 2.2.2, 3.1-3.4) featurizes columns by data type:
// string vs. integer vs. floating-point vs. mixed-alphanumeric. Dates are
// recognized separately because date columns behave like "numbers that can
// collide by chance" for uniqueness reasoning (Figure 2(b)).

#pragma once

#include <string>
#include <string_view>

namespace unidetect {

/// \brief Type of a single cell value.
enum class ValueType : int {
  kEmpty = 0,
  kInteger = 1,
  kFloat = 2,
  kDate = 3,
  kMixedAlnum = 4,  ///< letters and digits mixed, e.g. "KV214-310B8K2"
  kString = 5,      ///< letters/punctuation only
};

const char* ValueTypeToString(ValueType type);

/// \brief Dominant type of a column, the first featurization dimension.
enum class ColumnType : int {
  kUnknown = 0,
  kInteger = 1,
  kFloat = 2,
  kDate = 3,
  kMixedAlnum = 4,
  kString = 5,
};

const char* ColumnTypeToString(ColumnType type);

/// \brief Classifies one cell.
///
/// Rules (checked in order):
///  - empty / whitespace-only        -> kEmpty
///  - parses as integer (commas ok)  -> kInteger
///  - parses as number               -> kFloat
///  - ISO-like date (Y-M-D, M/D/Y)   -> kDate
///  - contains letters AND digits    -> kMixedAlnum
///  - otherwise                      -> kString
ValueType ClassifyValue(std::string_view cell);

/// \brief True for "2015-04-01", "04/01/2015", "2015/04/01" shapes.
bool LooksLikeDate(std::string_view cell);

}  // namespace unidetect
