#include "table/table.h"

#include <algorithm>

namespace unidetect {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " + std::to_string(column.size()) +
        " rows, table has " + std::to_string(num_rows()));
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Table Table::WithoutRows(const std::vector<size_t>& rows) const {
  Table out(name_);
  for (const auto& col : columns_) {
    // Lengths stay consistent because every column drops the same rows.
    Status st = out.AddColumn(col.WithoutRows(rows));
    (void)st;
  }
  return out;
}

Result<Table> Table::FromCsv(const CsvData& csv, std::string name) {
  size_t width = csv.header.size();
  for (const auto& row : csv.rows) width = std::max(width, row.size());
  if (width == 0) return Status::InvalidArgument("CSV has no columns");

  Table out(std::move(name));
  for (size_t c = 0; c < width; ++c) {
    std::string col_name =
        c < csv.header.size() ? csv.header[c] : "col" + std::to_string(c);
    std::vector<std::string> cells;
    cells.reserve(csv.rows.size());
    for (const auto& row : csv.rows) {
      cells.push_back(c < row.size() ? row[c] : std::string());
    }
    UNIDETECT_RETURN_NOT_OK(out.AddColumn(Column(std::move(col_name),
                                                 std::move(cells))));
  }
  return out;
}

CsvData Table::ToCsv() const {
  CsvData out;
  out.header.reserve(columns_.size());
  for (const auto& col : columns_) out.header.push_back(col.name());
  out.rows.resize(num_rows());
  for (auto& row : out.rows) row.reserve(columns_.size());
  for (const auto& col : columns_) {
    for (size_t r = 0; r < col.size(); ++r) out.rows[r].push_back(col.cell(r));
  }
  return out;
}

}  // namespace unidetect
