#include "table/types.h"

#include <cctype>

#include "util/string_util.h"

namespace unidetect {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kEmpty:
      return "empty";
    case ValueType::kInteger:
      return "integer";
    case ValueType::kFloat:
      return "float";
    case ValueType::kDate:
      return "date";
    case ValueType::kMixedAlnum:
      return "mixed-alnum";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kUnknown:
      return "unknown";
    case ColumnType::kInteger:
      return "integer";
    case ColumnType::kFloat:
      return "float";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kMixedAlnum:
      return "mixed-alnum";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

namespace {
bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}
}  // namespace

bool LooksLikeDate(std::string_view cell) {
  std::string_view s = Trim(cell);
  for (char sep : {'-', '/'}) {
    // Find exactly two separators.
    size_t p1 = s.find(sep);
    if (p1 == std::string_view::npos) continue;
    size_t p2 = s.find(sep, p1 + 1);
    if (p2 == std::string_view::npos) continue;
    if (s.find(sep, p2 + 1) != std::string_view::npos) continue;
    std::string_view a = s.substr(0, p1);
    std::string_view b = s.substr(p1 + 1, p2 - p1 - 1);
    std::string_view c = s.substr(p2 + 1);
    if (!AllDigits(a) || !AllDigits(b) || !AllDigits(c)) continue;
    // Y-M-D or D-M-Y / M-D-Y: one 4-digit year part at either end,
    // the others 1-2 digits.
    const bool ymd = a.size() == 4 && b.size() <= 2 && c.size() <= 2;
    const bool dmy = c.size() == 4 && a.size() <= 2 && b.size() <= 2;
    if (ymd || dmy) return true;
  }
  return false;
}

ValueType ClassifyValue(std::string_view cell) {
  std::string_view s = Trim(cell);
  if (s.empty()) return ValueType::kEmpty;
  if (LooksLikeDate(s)) return ValueType::kDate;
  if (LooksLikeInteger(s)) return ValueType::kInteger;
  if (ParseNumeric(s).has_value()) return ValueType::kFloat;
  bool has_letter = false;
  bool has_digit = false;
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) has_letter = true;
    if (std::isdigit(static_cast<unsigned char>(c))) has_digit = true;
  }
  if (has_letter && has_digit) return ValueType::kMixedAlnum;
  return ValueType::kString;
}

}  // namespace unidetect
