#include "table/column.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "util/string_util.h"

namespace unidetect {

void Column::SetCell(size_t row, std::string value) {
  cells_[row] = std::move(value);
  InvalidateCaches();
}

void Column::Append(std::string value) {
  cells_.push_back(std::move(value));
  InvalidateCaches();
}

void Column::InvalidateCaches() const {
  type_cached_ = false;
  numeric_cached_ = false;
}

ColumnType Column::type() const {
  if (type_cached_) return type_;
  std::array<size_t, 6> counts{};
  size_t non_empty = 0;
  for (const auto& cell : cells_) {
    ValueType vt = ClassifyValue(cell);
    counts[static_cast<size_t>(vt)]++;
    if (vt != ValueType::kEmpty) ++non_empty;
  }
  ColumnType result = ColumnType::kUnknown;
  if (non_empty > 0) {
    const size_t n_int = counts[static_cast<size_t>(ValueType::kInteger)];
    const size_t n_float = counts[static_cast<size_t>(ValueType::kFloat)];
    const size_t n_date = counts[static_cast<size_t>(ValueType::kDate)];
    const size_t n_mixed = counts[static_cast<size_t>(ValueType::kMixedAlnum)];
    // Generalization ladder: a column is numeric only if numbers strongly
    // dominate; a few stray strings in a numeric column (headers leaked
    // into data, "Unknown" markers) should not flip the type, but a
    // genuinely mixed column is kString/kMixedAlnum.
    const double denom = static_cast<double>(non_empty);
    if (n_date / denom > 0.8) {
      result = ColumnType::kDate;
    } else if ((n_int + n_float) / denom > 0.8) {
      result = n_float > 0 ? ColumnType::kFloat : ColumnType::kInteger;
    } else if ((n_mixed + n_int + n_float + n_date) / denom > 0.5 &&
               n_mixed > 0) {
      result = ColumnType::kMixedAlnum;
    } else {
      result = ColumnType::kString;
    }
  }
  type_ = result;
  type_cached_ = true;
  return type_;
}

void Column::EnsureNumericCache() const {
  if (numeric_cached_) return;
  numeric_values_.clear();
  numeric_rows_.clear();
  non_empty_count_ = 0;
  for (size_t row = 0; row < cells_.size(); ++row) {
    if (Trim(cells_[row]).empty()) continue;
    ++non_empty_count_;
    if (auto v = ParseNumeric(cells_[row])) {
      numeric_values_.push_back(*v);
      numeric_rows_.push_back(row);
    }
  }
  numeric_cached_ = true;
}

const std::vector<double>& Column::NumericValues() const {
  EnsureNumericCache();
  return numeric_values_;
}

const std::vector<size_t>& Column::NumericRows() const {
  EnsureNumericCache();
  return numeric_rows_;
}

double Column::NumericFraction() const {
  EnsureNumericCache();
  if (non_empty_count_ == 0) return 0.0;
  return static_cast<double>(numeric_values_.size()) /
         static_cast<double>(non_empty_count_);
}

size_t Column::NumDistinct() const {
  std::unordered_set<std::string_view> distinct;
  distinct.reserve(cells_.size());
  for (const auto& cell : cells_) distinct.insert(cell);
  return distinct.size();
}

Column Column::WithoutRows(const std::vector<size_t>& rows) const {
  std::vector<bool> drop(cells_.size(), false);
  for (size_t row : rows) {
    if (row < cells_.size()) drop[row] = true;
  }
  std::vector<std::string> kept;
  kept.reserve(cells_.size());
  for (size_t row = 0; row < cells_.size(); ++row) {
    if (!drop[row]) kept.push_back(cells_[row]);
  }
  return Column(name_, std::move(kept));
}

}  // namespace unidetect
