// Table: a named collection of equal-length columns.

#pragma once

#include <string>
#include <vector>

#include "table/column.h"
#include "util/csv.h"
#include "util/result.h"

namespace unidetect {

/// \brief A relational table (column-major).
///
/// All columns have the same number of rows; AddColumn enforces this.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_.front().size();
  }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// \brief Appends a column; fails if its length differs from existing
  /// columns.
  Status AddColumn(Column column);

  /// \brief Index of the column with the given name, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// \brief Copy with the given rows removed from every column
  /// (the table-level perturbation D \ O).
  Table WithoutRows(const std::vector<size_t>& rows) const;

  /// \brief Builds a Table from parsed CSV (column-major transpose).
  /// Missing trailing fields become empty cells; extra fields error.
  static Result<Table> FromCsv(const CsvData& csv, std::string name = "csv");

  /// \brief Converts back to row-major CSV data.
  CsvData ToCsv() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace unidetect
