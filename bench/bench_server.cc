// Open-loop saturation generator for the sharded network front end
// (DESIGN.md §16.7), backing BENCH_PR10.json: a real DetectionServer on
// a loopback port, driven through the pipelined AsyncUdwireClient — N
// connections each pacing UDWIRE detect requests at a fixed arrival
// rate with send times scheduled up front (queueing delay is measured,
// never hidden — no coordinated omission).
//
// For every io_threads ∈ {1,2,4,8} × coalesce {on,off} the offered
// rate climbs a ladder (doubling per step) until achieved throughput
// falls measurably below offered — the saturation point — recording
// throughput, exact p50/p99/p999 latency and shed counts at every
// rung. The `host.hardware_concurrency` field qualifies the scaling
// numbers: on a single-core host the shards serialize and the curve is
// flat by construction; the ≥2x-at-4-shards expectation applies to
// hosts with ≥4 cores.
//
// Not a google-benchmark binary: open-loop pacing needs its own clock
// discipline, so this defines its own main and prints one JSON document
// (scripts/bench_server.sh redirects it to BENCH_PR10.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "learn/trainer.h"
#include "server/client.h"
#include "server/server.h"
#include "serving/detection_service.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace unidetect {
namespace {

struct RunPoint {
  size_t io_threads = 1;
  bool coalesce = true;
  double offered_qps = 0;
  double achieved_qps = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t transport_errors = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  uint64_t batches = 0;
  uint64_t coalesced_requests = 0;
  bool saturated = false;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[rank];
}

std::string BuildArtifacts() {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/bench_server";
  std::filesystem::create_directories(dir);
  const std::string base_path = dir + "/base.udsnap";
  Trainer trainer;
  const Model base =
      trainer.Train(GenerateCorpus(WebCorpusSpec(300, 1131)).corpus);
  UNIDETECT_CHECK(base.Save(base_path).ok());
  return base_path;
}

RunPoint RunOnce(size_t io_threads, bool coalesce, const std::string& base,
                 int connections, double rate_per_connection,
                 std::chrono::seconds duration) {
  auto service_or = DetectionService::Create(base);
  UNIDETECT_CHECK(service_or.ok());
  auto service = std::move(service_or).ValueOrDie();

  ServerOptions options;
  options.io_threads = io_threads;
  options.coalescer.coalesce = coalesce;
  options.coalescer.queue_capacity = 4096;
  options.coalescer.max_batch_delay = std::chrono::microseconds(200);
  DetectionServer server(service.get(), options);
  UNIDETECT_CHECK(server.Start().ok());

  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / rate_per_connection));
  const size_t per_connection = static_cast<size_t>(
      rate_per_connection * static_cast<double>(duration.count()));

  RunPoint point;
  point.io_threads = io_threads;
  point.coalesce = coalesce;
  point.offered_qps = rate_per_connection * connections;
  point.requests = per_connection * connections;

  std::atomic<uint64_t> ok{0}, shed{0}, transport_errors{0};
  Mutex latencies_mu;
  std::vector<double> latencies;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      auto client_or = AsyncUdwireClient::Connect("127.0.0.1", server.port());
      if (!client_or.ok()) {
        transport_errors.fetch_add(per_connection);
        return;
      }
      auto client = std::move(client_or).ValueOrDie();
      const std::vector<Table> tables =
          GenerateCorpus(WebCorpusSpec(1, 1200 + c)).corpus.tables;

      // Completions land on the client's receiver thread; the sender
      // never blocks on them (the connection pipeline absorbs the
      // in-flight window).
      struct Done {
        Mutex mu;
        CondVar cv;
        size_t remaining;
        std::vector<double> latencies;
      } done;
      done.remaining = per_connection;
      done.latencies.reserve(per_connection);

      for (size_t i = 0; i < per_connection; ++i) {
        // Open loop: the schedule is fixed at start; a late sender
        // catches up instead of stretching the interval.
        std::this_thread::sleep_until(start + interval * (i + 1));
        const auto sent = std::chrono::steady_clock::now();
        wire::DetectRequest request;
        request.tables = tables;
        client->Detect(
            std::move(request),
            [&ok, &shed, &transport_errors, &done,
             sent](wire::DetectResponse response) {
              const auto now = std::chrono::steady_clock::now();
              if (response.code == wire::WireCode::kOk) {
                ok.fetch_add(1);
                MutexLock lock(&done.mu);
                done.latencies.push_back(
                    std::chrono::duration<double, std::micro>(now - sent)
                        .count());
                if (--done.remaining == 0) done.cv.NotifyAll();
                return;
              }
              if (response.code == wire::WireCode::kUnavailable) {
                transport_errors.fetch_add(1);
              } else {
                shed.fetch_add(1);
              }
              MutexLock lock(&done.mu);
              if (--done.remaining == 0) done.cv.NotifyAll();
            });
      }
      {
        MutexLock lock(&done.mu);
        while (done.remaining != 0) done.cv.Wait(done.mu);
      }
      MutexLock lock(&latencies_mu);
      latencies.insert(latencies.end(), done.latencies.begin(),
                       done.latencies.end());
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  point.ok = ok.load();
  point.shed = shed.load();
  point.transport_errors = transport_errors.load();
  point.achieved_qps = elapsed > 0 ? point.ok / elapsed : 0;
  std::sort(latencies.begin(), latencies.end());
  point.p50_us = Percentile(latencies, 0.50);
  point.p99_us = Percentile(latencies, 0.99);
  point.p999_us = Percentile(latencies, 0.999);
  point.batches = server.metrics().Count(ServerMetric::kBatches);
  point.coalesced_requests =
      server.metrics().Count(ServerMetric::kCoalescedRequests);
  server.Stop();
  return point;
}

void AppendPointJson(const RunPoint& p, std::string* out) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"io_threads\":%zu,\"coalesce\":%s,\"offered_qps\":%.1f,"
      "\"achieved_qps\":%.1f,\"requests\":%llu,\"ok\":%llu,\"shed\":%llu,"
      "\"transport_errors\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"p999_us\":%.1f,\"batches\":%llu,\"coalesced_requests\":%llu,"
      "\"saturated\":%s}",
      p.io_threads, p.coalesce ? "true" : "false", p.offered_qps,
      p.achieved_qps, static_cast<unsigned long long>(p.requests),
      static_cast<unsigned long long>(p.ok),
      static_cast<unsigned long long>(p.shed),
      static_cast<unsigned long long>(p.transport_errors), p.p50_us, p.p99_us,
      p.p999_us, static_cast<unsigned long long>(p.batches),
      static_cast<unsigned long long>(p.coalesced_requests),
      p.saturated ? "true" : "false");
  out->append(buf);
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  int connections = 4;
  double base_rate = 100.0;  // per connection, first ladder rung
  int seconds = 2;
  int max_steps = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--connections") connections = std::atoi(argv[i + 1]);
    if (flag == "--rate") base_rate = std::atof(argv[i + 1]);
    if (flag == "--seconds") seconds = std::atoi(argv[i + 1]);
    if (flag == "--steps") max_steps = std::atoi(argv[i + 1]);
  }

  const std::string base = BuildArtifacts();
  const std::vector<size_t> shard_counts = {1, 2, 4, 8};

  std::string out = "{\n  \"bench\": \"bench_server_saturation\",\n";
  out += "  \"host\": {\"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + "},\n";
  out += "  \"config\": {\"connections\": " + std::to_string(connections) +
         ", \"base_rate_per_connection\": " + std::to_string(base_rate) +
         ", \"seconds\": " + std::to_string(seconds) +
         ", \"max_steps\": " + std::to_string(max_steps) + "},\n";
  out += "  \"points\": [\n";

  bool first = true;
  for (const size_t io_threads : shard_counts) {
    for (const bool coalesce : {true, false}) {
      double rate = base_rate;
      for (int step = 0; step < max_steps; ++step) {
        std::fprintf(stderr,
                     "io_threads=%zu coalesce=%s rate=%.0f/conn x%d...\n",
                     io_threads, coalesce ? "on" : "off", rate, connections);
        RunPoint point = RunOnce(io_threads, coalesce, base, connections,
                                 rate, std::chrono::seconds(seconds));
        // Saturated once achieved throughput falls measurably short of
        // offered (the open-loop backlog is absorbing the difference),
        // or once anything was shed.
        point.saturated = point.achieved_qps < 0.85 * point.offered_qps ||
                          point.shed > 0;
        if (!first) out += ",\n";
        first = false;
        AppendPointJson(point, &out);
        if (point.saturated) break;
        rate *= 2;
      }
    }
  }
  out += "\n  ]\n}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace unidetect

int main(int argc, char** argv) { return unidetect::Main(argc, argv); }
