// Open-loop load generator for the network front end (DESIGN.md §16),
// backing BENCH_PR9.json: a real DetectionServer on a loopback port,
// N connections each pacing UDWIRE detect requests at a fixed arrival
// rate with send and receive decoupled (send times are scheduled up
// front and never wait on responses, so queueing delay is measured
// rather than hidden — no coordinated omission). Reports achieved QPS
// and exact p50/p99/p999 latency per scenario:
//
//   coalesce_on          batching enabled (the serving default)
//   coalesce_off         every request is its own DetectBatch call
//   coalesce_on_reload   batching enabled while a churn thread swaps
//                        the model via Reload/ApplyDelta continuously
//
// Not a google-benchmark binary: open-loop pacing needs its own clock
// discipline, so this defines its own main and prints one JSON document
// (scripts/bench_server.sh redirects it to BENCH_PR9.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "learn/trainer.h"
#include "offline/delta_build.h"
#include "server/client.h"
#include "server/server.h"
#include "serving/detection_service.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace unidetect {
namespace {

struct Scenario {
  std::string name;
  bool coalesce = true;
  bool reload_churn = false;
};

struct ScenarioResult {
  std::string name;
  double offered_qps = 0;
  double achieved_qps = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t transport_errors = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  uint64_t batches = 0;
  uint64_t coalesced_requests = 0;
  uint64_t reload_cycles = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[rank];
}

struct Paths {
  std::string base;
  std::string delta;
};

Paths BuildArtifacts() {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/bench_server";
  std::filesystem::create_directories(dir);
  Paths paths{dir + "/base.udsnap", dir + "/delta.udsnap"};
  Trainer trainer;
  const Model base =
      trainer.Train(GenerateCorpus(WebCorpusSpec(300, 1131)).corpus);
  UNIDETECT_CHECK(base.Save(paths.base).ok());
  const std::string shard = dir + "/shard";
  UNIDETECT_CHECK(
      SaveCorpusToDirectory(GenerateCorpus(WebCorpusSpec(40, 1132)).corpus,
                            shard)
          .ok());
  DeltaBuildSpec spec;
  spec.base_path = paths.base;
  spec.input_dirs = {shard};
  spec.out_path = paths.delta;
  UNIDETECT_CHECK(BuildDeltaSnapshot(spec).ok());
  return paths;
}

ScenarioResult RunScenario(const Scenario& scenario, const Paths& paths,
                           int connections, double rate_per_connection,
                           std::chrono::seconds duration) {
  auto service_or = DetectionService::Create(paths.base);
  UNIDETECT_CHECK(service_or.ok());
  auto service = std::move(service_or).ValueOrDie();

  ServerOptions options;
  options.coalescer.coalesce = scenario.coalesce;
  options.coalescer.queue_capacity = 4096;
  options.coalescer.max_batch_delay = std::chrono::microseconds(200);
  DetectionServer server(service.get(), options);
  UNIDETECT_CHECK(server.Start().ok());

  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / rate_per_connection));
  const size_t per_connection = static_cast<size_t>(
      rate_per_connection * static_cast<double>(duration.count()));

  std::atomic<bool> churn_stop{false};
  std::atomic<uint64_t> reload_cycles{0};
  std::thread churn;
  if (scenario.reload_churn) {
    churn = std::thread([&] {
      // Alternate stacking the delta and folding back to the base; each
      // swap is a full engine replacement under live traffic.
      for (uint64_t cycle = 0; !churn_stop.load(); ++cycle) {
        const Status status = cycle % 2 == 0
                                  ? service->ApplyDelta(paths.delta)
                                  : service->Reload(paths.base);
        UNIDETECT_CHECK(status.ok());
        reload_cycles.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  ScenarioResult result;
  result.name = scenario.name;
  result.offered_qps = rate_per_connection * connections;
  result.requests = per_connection * connections;

  std::atomic<uint64_t> ok{0}, shed{0}, transport_errors{0};
  Mutex latencies_mu;
  std::vector<double> latencies;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      auto client = UdwireClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        transport_errors.fetch_add(per_connection);
        return;
      }
      const std::vector<Table> tables =
          GenerateCorpus(WebCorpusSpec(1, 1200 + c)).corpus.tables;
      std::vector<std::string> frames(per_connection);
      for (size_t i = 0; i < per_connection; ++i) {
        wire::DetectRequest request;
        request.request_id = i;
        request.tables = tables;
        frames[i] = wire::EncodeDetectRequest(request);
      }
      std::vector<std::chrono::steady_clock::time_point> sent(per_connection);
      std::vector<double> local;
      local.reserve(per_connection);

      // Receiver drains responses while the sender paces the open loop.
      std::thread receiver([&] {
        for (size_t i = 0; i < per_connection; ++i) {
          auto response = client->ReadResponse();
          if (!response.ok()) {
            transport_errors.fetch_add(per_connection - i);
            return;
          }
          const auto now = std::chrono::steady_clock::now();
          if (response->code == wire::WireCode::kOk) {
            ok.fetch_add(1);
            local.push_back(
                std::chrono::duration<double, std::micro>(
                    now - sent[response->request_id])
                    .count());
          } else {
            shed.fetch_add(1);
          }
        }
      });

      for (size_t i = 0; i < per_connection; ++i) {
        // Open loop: the schedule is fixed at start; a late sender
        // catches up instead of stretching the interval.
        std::this_thread::sleep_until(start + interval * (i + 1));
        sent[i] = std::chrono::steady_clock::now();
        if (!client->SendRaw(frames[i]).ok()) {
          transport_errors.fetch_add(1);
          sent[i] = {};
        }
      }
      receiver.join();
      MutexLock lock(&latencies_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  churn_stop.store(true);
  if (churn.joinable()) churn.join();

  result.ok = ok.load();
  result.shed = shed.load();
  result.transport_errors = transport_errors.load();
  result.achieved_qps = elapsed > 0 ? result.ok / elapsed : 0;
  std::sort(latencies.begin(), latencies.end());
  result.p50_us = Percentile(latencies, 0.50);
  result.p99_us = Percentile(latencies, 0.99);
  result.p999_us = Percentile(latencies, 0.999);
  result.batches = server.metrics().Count(ServerMetric::kBatches);
  result.coalesced_requests =
      server.metrics().Count(ServerMetric::kCoalescedRequests);
  result.reload_cycles = reload_cycles.load();
  server.Stop();
  return result;
}

void AppendScenarioJson(const ScenarioResult& r, std::string* out) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"name\":\"%s\",\"offered_qps\":%.1f,\"achieved_qps\":%.1f,"
      "\"requests\":%llu,\"ok\":%llu,\"shed\":%llu,"
      "\"transport_errors\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"p999_us\":%.1f,\"batches\":%llu,\"coalesced_requests\":%llu,"
      "\"reload_cycles\":%llu}",
      r.name.c_str(), r.offered_qps, r.achieved_qps,
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.transport_errors), r.p50_us, r.p99_us,
      r.p999_us, static_cast<unsigned long long>(r.batches),
      static_cast<unsigned long long>(r.coalesced_requests),
      static_cast<unsigned long long>(r.reload_cycles));
  out->append(buf);
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  int connections = 2;
  double rate = 100.0;  // per connection
  int seconds = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--connections") connections = std::atoi(argv[i + 1]);
    if (flag == "--rate") rate = std::atof(argv[i + 1]);
    if (flag == "--seconds") seconds = std::atoi(argv[i + 1]);
  }

  const Paths paths = BuildArtifacts();
  const std::vector<Scenario> scenarios = {
      {"coalesce_on", /*coalesce=*/true, /*reload_churn=*/false},
      {"coalesce_off", /*coalesce=*/false, /*reload_churn=*/false},
      {"coalesce_on_reload_churn", /*coalesce=*/true, /*reload_churn=*/true},
  };

  std::string out = "{\n  \"bench\": \"bench_server\",\n";
  out += "  \"config\": {\"connections\": " + std::to_string(connections) +
         ", \"rate_per_connection\": " + std::to_string(rate) +
         ", \"seconds\": " + std::to_string(seconds) + "},\n";
  out += "  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    std::fprintf(stderr, "running scenario %s...\n",
                 scenarios[i].name.c_str());
    const ScenarioResult result =
        RunScenario(scenarios[i], paths, connections, rate,
                    std::chrono::seconds(seconds));
    AppendScenarioJson(result, &out);
    out += i + 1 < scenarios.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace unidetect

int main(int argc, char** argv) { return unidetect::Main(argc, argv); }
