// Reproduces Figure 10: quality of predicted errors on Enterprise^T
// (panels as in Figure 8). Enterprise tables are fewer but much taller
// and ID/measurement heavy; the WEB-trained model generalizes to them
// unchanged because its reasoning is purely distributional (Section 4.3).

#include <cstdio>

#include "eval/harness.h"
#include "util/logging.h"

using namespace unidetect;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Figure 10: error detection quality on Enterprise^T ==\n");

  ExperimentConfig config;
  config.injection.seed = 202;
  // Enterprise is the smallest corpus; higher per-table injection rates
  // keep >100 ground-truth errors per class so Precision@100 is not
  // artificially capped by truth scarcity.
  config.injection.spelling_rate = 0.4;
  config.injection.outlier_rate = 0.4;
  config.injection.uniqueness_rate = 0.4;
  config.injection.fd_rate = 0.4;
  CorpusSpec test_spec =
      EnterpriseCorpusSpec(/*num_tables=*/1200, /*seed=*/999);
  test_spec.name = "Enterprise^T";
  const Experiment experiment = BuildExperiment(test_spec, config);

  std::printf("test corpus: %zu tables, %zu injected errors\n",
              experiment.test.corpus.tables.size(),
              experiment.truth.errors.size());
  RunFigurePanels("Enterprise^T", experiment);
  return 0;
}
