// Ablations of Uni-Detect's design choices (DESIGN.md experiment index):
//
//   A1  featurization on vs off       (Section 2.2.2, Example 2)
//   A2  range smoothing vs point       (Section 3.1, Eq. 11 vs Eq. 12)
//   A3  denominator tail direction     (paper formulas vs Example-2 reading)
//   A4  background corpus size sweep   (how much of T is enough?)
//
// Output: mean Precision@{20,50,100} across the four error classes on a
// WEB^T sample, one row per configuration.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

// Mean precision at one K across the four classes.
double MeanPrecisionAt(const Experiment& experiment, size_t k_index) {
  double total = 0.0;
  int classes = 0;
  for (ErrorClass cls : {ErrorClass::kOutlier, ErrorClass::kSpelling,
                         ErrorClass::kUniqueness, ErrorClass::kFd}) {
    const PrecisionCurve curve = RunUniDetect(experiment, cls);
    total += curve.precision[k_index];
    ++classes;
  }
  return total / classes;
}

void RunConfig(const std::string& label, const ExperimentConfig& config) {
  CorpusSpec test_spec = WebCorpusSpec(1500, 777);
  test_spec.name = "WEB^T";
  const Experiment experiment = BuildExperiment(test_spec, config);
  // Indices 1, 4, 9 in the default K grid = K 20, 50, 100.
  std::printf("%-34s %8.2f %8.2f %8.2f\n", label.c_str(),
              MeanPrecisionAt(experiment, 1), MeanPrecisionAt(experiment, 4),
              MeanPrecisionAt(experiment, 9));
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Ablations: mean Precision@{20,50,100} over the four "
              "error classes, WEB^T ==\n");
  std::printf("%-34s %8s %8s %8s\n", "configuration", "P@20", "P@50",
              "P@100");

  ExperimentConfig base;
  base.train_tables = 12000;
  base.model_cache_dir = "";  // every config trains its own model
  RunConfig("full UniDetect (default)", base);

  {
    ExperimentConfig config = base;
    config.model_options.featurize.enabled = false;
    RunConfig("A1: no featurization (all of T)", config);
  }
  {
    ExperimentConfig config = base;
    config.model_options.smoothing = SmoothingMode::kPoint;
    RunConfig("A2: point estimates (Eq. 11)", config);
  }
  {
    ExperimentConfig config = base;
    config.model_options.denominator = DenominatorMode::kCleanTail;
    RunConfig("A3: clean-tail denominator", config);
  }
  for (size_t train : {1000, 4000, 12000, 25000}) {
    ExperimentConfig config = base;
    config.train_tables = train;
    RunConfig("A4: |T| = " + std::to_string(train) + " tables", config);
  }
  // A5: perturbation budget epsilon (Definition 2). Too small misses
  // multi-row anomalies; too large lets chance duplicates in tall
  // columns masquerade as fully-cleanable violations.
  {
    ExperimentConfig config = base;
    config.model_options.epsilon.min_rows = 1;
    config.model_options.epsilon.fraction = 0.0;
    RunConfig("A5: epsilon = 1 row", config);
  }
  {
    ExperimentConfig config = base;
    config.model_options.epsilon.min_rows = 2;
    config.model_options.epsilon.fraction = 0.01;
    RunConfig("A5: epsilon = max(2, 1%) [default]", config);
  }
  {
    ExperimentConfig config = base;
    config.model_options.epsilon.min_rows = 8;
    config.model_options.epsilon.fraction = 0.05;
    RunConfig("A5: epsilon = max(8, 5%)", config);
  }

  std::printf(
      "\nexpected shape: the default dominates; removing featurization or "
      "range smoothing costs precision; more background data helps "
      "monotonically.\n");
  return 0;
}
