// Reproduces Figure 12: FD-violation quality on WEB^T and WIKI^T —
// panels (a)/(b) classical FD, panels (c)/(d) FD-synthesis (FDs with a
// learnt programmatic relationship, Appendix D). The expected shape:
// plain FD precision is the weakest of all error classes (coincidental
// almost-FDs abound), and FD-synthesis is substantially better.

#include <cstdio>

#include "eval/harness.h"
#include "util/logging.h"

using namespace unidetect;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Figure 12: FD and FD-synthesis quality ==\n");

  ExperimentConfig config;
  {
    CorpusSpec test_spec = WebCorpusSpec(/*num_tables=*/2500, /*seed=*/777);
    test_spec.name = "WEB^T";
    const Experiment experiment = BuildExperiment(test_spec, config);
    std::printf("WEB^T: %zu tables, %zu injected FD errors (%zu on "
                "synthesizable pairs)\n",
                experiment.test.corpus.tables.size(),
                experiment.truth.CountClass(ErrorClass::kFd),
                SynthesizableFdTruth(experiment.truth).errors.size());
    RunFdPanels("WEB^T", experiment);
  }
  {
    ExperimentConfig wiki_config = config;
    wiki_config.injection.seed = 101;
    CorpusSpec test_spec = WikiCorpusSpec(/*num_tables=*/2500, /*seed=*/888);
    test_spec.name = "WIKI^T";
    const Experiment experiment = BuildExperiment(test_spec, wiki_config);
    std::printf("\nWIKI^T: %zu tables, %zu injected FD errors (%zu on "
                "synthesizable pairs)\n",
                experiment.test.corpus.tables.size(),
                experiment.truth.CountClass(ErrorClass::kFd),
                SynthesizableFdTruth(experiment.truth).errors.size());
    RunFdPanels("WIKI^T", experiment);
  }
  return 0;
}
