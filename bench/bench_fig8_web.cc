// Reproduces Figure 8: quality of predicted errors on WEB^T, evaluated
// with Precision@K — panels (a) spelling, (b) numeric outliers,
// (c) uniqueness violations. UniDetect is trained on the WEB background
// corpus and applied unchanged to the injected WEB^T test sample.

#include <cstdio>

#include "eval/harness.h"
#include "util/logging.h"

using namespace unidetect;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Figure 8: error detection quality on WEB^T ==\n");

  ExperimentConfig config;
  CorpusSpec test_spec = WebCorpusSpec(/*num_tables=*/2500, /*seed=*/777);
  test_spec.name = "WEB^T";
  const Experiment experiment = BuildExperiment(test_spec, config);

  std::printf("test corpus: %zu tables, %zu injected errors\n",
              experiment.test.corpus.tables.size(),
              experiment.truth.errors.size());
  RunFigurePanels("WEB^T", experiment);
  return 0;
}
