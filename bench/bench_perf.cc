// Microbenchmarks (google-benchmark) for the "interactive speed" claim
// of Section 2.2.3: online detection is a metric computation plus a
// model lookup. Covers the hot paths: edit distance, metric profiles,
// LR lookups, per-table detection, and offline training throughput.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "corpus/corpus_io.h"
#include "corpus/data_pools.h"
#include "corpus/generator.h"
#include "detect/unidetect.h"
#include "learn/candidates.h"
#include "learn/model_stack.h"
#include "learn/subset_stats.h"
#include "learn/trainer.h"
#include "metrics/edit_distance.h"
#include "metrics/metric_functions.h"
#include "model_format/delta_snapshot.h"
#include "model_format/model_snapshot.h"
#include "model_format/model_view.h"
#include "model_format/snapshot_v2.h"
#include "offline/compactor.h"
#include "offline/offline_build.h"
#include "serving/detection_service.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/simd.h"

namespace unidetect {
namespace {

const Model& SharedModel() {
  static const Model* model = [] {
    SetLogLevel(LogLevel::kWarning);
    Trainer trainer;
    return new Model(
        trainer.Train(GenerateCorpus(WebCorpusSpec(5000, 31)).corpus));
  }();
  return *model;
}

void BM_EditDistance(benchmark::State& state) {
  const std::string a = "Keane, Mr. Andrew Jackson";
  const std::string b = "Keane, Mr. Andrew Jakcson";
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_BoundedEditDistance(benchmark::State& state) {
  const std::string a = "Keane, Mr. Andrew Jackson";
  const std::string b = "Katavelos, Mr. Vassilios G.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedEditDistance(a, b, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_BoundedEditDistance)->Arg(2)->Arg(20);

Column MakeNameColumn(int64_t n) {
  Rng rng(7);
  std::vector<std::string> cells;
  for (int64_t i = 0; i < n; ++i) {
    cells.push_back(rng.Pick(FirstNames()) + " " + rng.Pick(LastNames()));
  }
  return Column("names", cells);
}

void BM_MpdProfile(benchmark::State& state) {
  const Column column = MakeNameColumn(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMpdProfile(column));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MpdProfile)->Arg(20)->Arg(50)->Arg(200)->Arg(400)->Complexity();

// Seed three-scan algorithm, kept as the baseline the optimized single
// pass is measured against (both live in metric_functions.cc).
void BM_MpdProfileReference(benchmark::State& state) {
  const Column column = MakeNameColumn(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMpdProfileReference(column));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MpdProfileReference)
    ->Arg(20)
    ->Arg(50)
    ->Arg(200)
    ->Arg(400)
    ->Complexity();

void BM_UrProfile(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::string> cells;
  for (int64_t i = 0; i < state.range(0); ++i) {
    cells.push_back(rng.AlphaString(8));
  }
  const Column column("ids", cells);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeUrProfile(column));
  }
}
BENCHMARK(BM_UrProfile)->Arg(50)->Arg(500);

void BM_FrProfile(benchmark::State& state) {
  Rng rng(11);
  std::vector<std::string> lhs_cells;
  std::vector<std::string> rhs_cells;
  for (int64_t i = 0; i < state.range(0); ++i) {
    const CityEntry& entry = rng.Pick(Cities());
    lhs_cells.push_back(entry.city);
    rhs_cells.push_back(entry.country);
  }
  const Column lhs("city", lhs_cells);
  const Column rhs("country", rhs_cells);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeFrProfile(lhs, rhs));
  }
}
BENCHMARK(BM_FrProfile)->Arg(50)->Arg(500);

void BM_LikelihoodRatioLookup(benchmark::State& state) {
  const Model& model = SharedModel();
  const Column probe("Hometown",
                     {"London", "Paris", "Paris", "Berlin", "Madrid", "Rome",
                      "Tokyo", "Delhi", "Oslo", "Cairo", "Lima", "Quito"});
  const UniquenessCandidate cand = ExtractUniquenessCandidate(
      probe, 0, model.token_index(), model.options());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LikelihoodRatio(
        ErrorClass::kUniqueness, cand.key, cand.theta1, cand.theta2));
  }
}
BENCHMARK(BM_LikelihoodRatioLookup);

// Raw CountSurprising query against one large subset: merge-sort tree
// (BM_LrQuery) vs the linear reference scan (BM_LrQueryLinear). Thetas
// cycle through a precomputed pool so the query point varies per
// iteration without timing the RNG.
const SubsetStats& SharedLargeSubset() {
  static const SubsetStats* stats = [] {
    Rng rng(41);
    auto* s = new SubsetStats();
    for (int i = 0; i < 100000; ++i) {
      s->Add(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    }
    s->Finalize();
    return s;
  }();
  return *stats;
}

void BM_LrQuery(benchmark::State& state) {
  const SubsetStats& stats = SharedLargeSubset();
  Rng rng(43);
  std::vector<double> thetas(256);
  for (auto& t : thetas) t = rng.Uniform(0, 1000);
  size_t i = 0;
  for (auto _ : state) {
    const double t1 = thetas[i % thetas.size()];
    const double t2 = thetas[(i + 1) % thetas.size()];
    ++i;
    benchmark::DoNotOptimize(stats.CountSurprising(
        SurpriseDirection::kLowerMoreSurprising, t1, t2));
  }
}
BENCHMARK(BM_LrQuery)->Arg(100000);

void BM_LrQueryLinear(benchmark::State& state) {
  const SubsetStats& stats = SharedLargeSubset();
  Rng rng(43);
  std::vector<double> thetas(256);
  for (auto& t : thetas) t = rng.Uniform(0, 1000);
  size_t i = 0;
  for (auto _ : state) {
    const double t1 = thetas[i % thetas.size()];
    const double t2 = thetas[(i + 1) % thetas.size()];
    ++i;
    benchmark::DoNotOptimize(stats.CountSurprisingLinear(
        SurpriseDirection::kLowerMoreSurprising, t1, t2));
  }
}
BENCHMARK(BM_LrQueryLinear)->Arg(100000);

// The leaf scans inside CountSurprising with the SIMD path on (simd=1)
// vs forced scalar (simd=0), over the same theta stream.
// SubsetStatsSimdTest guards the bit-identical contract; this sweep
// records the speedup the vector kernels buy on the query path. n=96
// is leaf-dominated (every post swept, no block above kSimdLeafBlock
// fits), n=100000 is tree-dominated (binary searches do the bulk, the
// sweep covers only the sub-block leftover).
const SubsetStats& BenchSubset(size_t n) {
  static auto* const cache = new std::map<size_t, const SubsetStats*>();
  auto it = cache->find(n);
  if (it != cache->end()) return *it->second;
  Rng rng(41);
  auto* s = new SubsetStats();
  for (size_t i = 0; i < n; ++i) {
    s->Add(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
  }
  s->Finalize();
  return *cache->emplace(n, s).first->second;
}

void BM_CountSurprising(benchmark::State& state) {
  const SubsetStats& stats = BenchSubset(static_cast<size_t>(state.range(0)));
  simd::SetSimdEnabled(state.range(1) != 0);
  Rng rng(43);
  std::vector<double> thetas(256);
  for (auto& t : thetas) t = rng.Uniform(0, 1000);
  size_t i = 0;
  for (auto _ : state) {
    const double t1 = thetas[i % thetas.size()];
    const double t2 = thetas[(i + 1) % thetas.size()];
    ++i;
    benchmark::DoNotOptimize(stats.CountSurprising(
        SurpriseDirection::kLowerMoreSurprising, t1, t2));
  }
  state.SetLabel(simd::SimdLevelName(simd::ActiveSimdLevel()));
  simd::SetSimdEnabled(true);
}
BENCHMARK(BM_CountSurprising)
    ->ArgNames({"n", "simd"})
    ->Args({96, 0})
    ->Args({96, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_DetectTable(benchmark::State& state) {
  const Model& model = SharedModel();
  Rng rng(13);
  AnnotatedTable t = GenerateTable(Archetype::kPartsInventory,
                                   static_cast<size_t>(state.range(0)), rng);
  UniDetectOptions options;
  options.alpha = 1.0;
  UniDetect detector(&model, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.DetectTable(t.table));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetectTable)->Arg(20)->Arg(100)->Arg(500);

void BM_TrainThroughput(benchmark::State& state) {
  const AnnotatedCorpus corpus =
      GenerateCorpus(WebCorpusSpec(static_cast<size_t>(state.range(0)), 17));
  for (auto _ : state) {
    Trainer trainer;
    benchmark::DoNotOptimize(trainer.Train(corpus.corpus));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainThroughput)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateCorpus(WebCorpusSpec(static_cast<size_t>(state.range(0)), 19)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CorpusGeneration)->Arg(500)->Unit(benchmark::kMillisecond);

// Cold model load, binary snapshot vs legacy text: the artifact-tier
// claim is that a service restart pays file size + checksum, not a
// line-by-line parse. Both write once in setup and time Model::Load end
// to end (read, sniff, decode).
void BM_ModelLoadBinary(benchmark::State& state) {
  const std::string path = "/tmp/unidetect_bench_binary.model";
  if (!SharedModel().Save(path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = Model::Load(path);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ReadFileToString(path)->size()));
}
BENCHMARK(BM_ModelLoadBinary)->Unit(benchmark::kMillisecond);

void BM_ModelLoadText(benchmark::State& state) {
  const std::string path = "/tmp/unidetect_bench_text.model";
  if (!WriteStringToFile(path, SharedModel().Serialize()).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = Model::Load(path);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ReadFileToString(path)->size()));
}
BENCHMARK(BM_ModelLoadText)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// UDSNAP v1 vs v2 (DESIGN.md section 12). Synthetic models with a fixed
// subset count and a swept observation count, written once per
// (version, size): v1 load/reload cost scales with observations (decode
// copies and rebuilds every tree), v2 stays O(#subsets) because the
// mapped flat layout is queried in place and deferred validation never
// reads the bulk payloads.

Model BuildSyntheticModel(uint64_t total_obs) {
  ModelOptions options;
  options.min_support = 1;
  Model model(options);
  Rng rng(97);
  constexpr uint64_t kSubsets = 16;
  const uint64_t per_subset = total_obs / kSubsets;
  for (uint64_t s = 0; s < kSubsets; ++s) {
    const FeatureKey key{s};
    for (uint64_t i = 0; i < per_subset; ++i) {
      const double pre = rng.Uniform(0.0, 1000.0);
      model.AddObservation(key, pre, rng.Uniform(0.0, pre));
    }
  }
  model.Finalize();
  return model;
}

const std::string& BenchSnapshotPath(int64_t total_obs, uint32_t version,
                                     bool f16 = false) {
  static auto* const cache =
      new std::map<std::tuple<int64_t, uint32_t, bool>, std::string>();
  const auto key = std::make_tuple(total_obs, version, f16);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  const Model model = BuildSyntheticModel(static_cast<uint64_t>(total_obs));
  std::string path = std::filesystem::temp_directory_path().string() +
                     "/unidetect_bench_v" + std::to_string(version) +
                     (f16 ? "f16" : "") + "_" + std::to_string(total_obs) +
                     ".model";
  UNIDETECT_CHECK(!f16 || version == 2);
  const std::string bytes =
      version == 2
          ? EncodeModelSnapshotV2(model, f16 ? ObservationEncoding::kF16
                                             : ObservationEncoding::kF32)
          : EncodeModelSnapshotV1(model);
  UNIDETECT_CHECK(WriteStringToFile(path, bytes).ok());
  return cache->emplace(key, std::move(path)).first->second;
}

// Cold open through the serving read handle (ModelView::Open, deferred
// validation — the DetectionService::Reload path). range(0) = snapshot
// format version, range(1) = total observations.
void BM_ModelLoadV2(benchmark::State& state) {
  const std::string& path = BenchSnapshotPath(
      state.range(1), static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto view = ModelView::Open(path);
    if (!view.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    benchmark::DoNotOptimize(view->model().num_subsets());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ReadFileToString(path)->size()));
}
BENCHMARK(BM_ModelLoadV2)
    ->ArgNames({"ver", "obs"})
    ->Args({1, 100000})
    ->Args({1, 400000})
    ->Args({1, 1600000})
    ->Args({2, 100000})
    ->Args({2, 400000})
    ->Args({2, 1600000})
    ->Unit(benchmark::kMicrosecond);

// Full hot-swap latency: DetectionService::Reload end to end (open,
// engine construction, pointer swap). The acceptance numbers: v2 at
// least 10x faster than v1 at equal size, and sub-linear in the
// observation count.
void BM_ReloadLatency(benchmark::State& state) {
  const std::string& path = BenchSnapshotPath(
      state.range(1), static_cast<uint32_t>(state.range(0)));
  auto service = DetectionService::Create(path);
  if (!service.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  for (auto _ : state) {
    UNIDETECT_CHECK((*service)->Reload(path).ok());
  }
}
BENCHMARK(BM_ReloadLatency)
    ->ArgNames({"ver", "obs"})
    ->Args({1, 100000})
    ->Args({1, 400000})
    ->Args({1, 1600000})
    ->Args({2, 100000})
    ->Args({2, 400000})
    ->Args({2, 1600000})
    ->Unit(benchmark::kMicrosecond);

// LR lookup through a loaded model, owned v1 storage vs mapped v2
// spans: the zero-copy layout must not tax the query hot path (within
// 5% is the acceptance bound; the binary-searched sorted index and the
// identical SubsetStats query code are why it holds). The f16=1 leg
// queries the half-precision observation sections in place — half the
// resident bytes, widened lane-by-lane in the SIMD leaf scans.
void BM_LrQueryLoadedModel(benchmark::State& state) {
  const std::string& path =
      BenchSnapshotPath(state.range(1), static_cast<uint32_t>(state.range(0)),
                        state.range(2) != 0);
  auto view = ModelView::Open(path);
  if (!view.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const Model& model = view->model();
  Rng rng(43);
  std::vector<double> thetas(256);
  for (auto& t : thetas) t = rng.Uniform(0, 1000);
  size_t i = 0;
  for (auto _ : state) {
    const double t2 = thetas[i % thetas.size()];
    const double t1 = t2 / 2;
    const FeatureKey key{static_cast<uint64_t>(i % 16)};
    ++i;
    benchmark::DoNotOptimize(
        model.LikelihoodRatio(ErrorClass::kSpelling, key, t1, t2));
  }
}
BENCHMARK(BM_LrQueryLoadedModel)
    ->ArgNames({"ver", "obs", "f16"})
    ->Args({1, 1600000, 0})
    ->Args({2, 1600000, 0})
    ->Args({2, 1600000, 1});

// Serving-tier batch throughput: tables/second through DetectionService
// at 1 and 4 worker threads.
void BM_DetectBatch(benchmark::State& state) {
  static const Corpus* const batch = [] {
    return new Corpus(GenerateCorpus(WebCorpusSpec(64, 53)).corpus);
  }();
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(
      std::shared_ptr<const Model>(&SharedModel(), [](const Model*) {}),
      options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.DetectBatch(
        batch->tables, nullptr, static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch->tables.size()));
}
BENCHMARK(BM_DetectBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The same batch through a service with the findings cache enabled: a
// setup pass warms it, so every timed iteration is fingerprint + LRU
// hit per table. Compare against the cold BM_DetectBatch numbers above
// for the memoization win (acceptance bound: >= 10x at equal threads).
void BM_DetectBatchWarmCache(benchmark::State& state) {
  static const Corpus* const batch = [] {
    return new Corpus(GenerateCorpus(WebCorpusSpec(64, 53)).corpus);
  }();
  UniDetectOptions options;
  options.alpha = 1.0;
  DetectionService service(
      std::shared_ptr<const Model>(&SharedModel(), [](const Model*) {}),
      options, /*findings_cache_bytes=*/64ull << 20);
  benchmark::DoNotOptimize(service.DetectBatch(
      batch->tables, nullptr, static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.DetectBatch(
        batch->tables, nullptr, static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch->tables.size()));
}
BENCHMARK(BM_DetectBatchWarmCache)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Offline build pipeline (DESIGN.md section 11): end-to-end sharded
// build at 1/2/4/8 shards (worker count matches shard count, so the
// argument sweep measures scaling), plus the cost of the final
// merge-all-partials fold on its own.
const std::string& OfflineBenchCorpusDir() {
  static const std::string* const dir = [] {
    auto* d = new std::string(std::filesystem::temp_directory_path().string() +
                              "/unidetect_bench_offline_corpus");
    std::filesystem::remove_all(*d);
    const Corpus corpus = GenerateCorpus(WebCorpusSpec(128, 41)).corpus;
    UNIDETECT_CHECK(SaveCorpusToDirectory(corpus, *d).ok());
    return d;
  }();
  return *dir;
}

void BM_OfflineBuild(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const std::string build_dir =
      std::filesystem::temp_directory_path().string() +
      "/unidetect_bench_offline_build";
  OfflineBuildOptions options;
  options.num_threads = shards;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(build_dir);
    UNIDETECT_CHECK(PlanOfflineBuild({OfflineBenchCorpusDir()},
                                     TrainerOptions{}, shards, build_dir)
                        .ok());
    state.ResumeTiming();
    auto report = RunOfflineBuild(build_dir, options);
    UNIDETECT_CHECK(report.ok() && report->completed);
  }
}
BENCHMARK(BM_OfflineBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_OfflineMerge(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const std::string build_dir =
      std::filesystem::temp_directory_path().string() +
      "/unidetect_bench_offline_merge_" + std::to_string(shards);
  std::filesystem::remove_all(build_dir);
  UNIDETECT_CHECK(PlanOfflineBuild({OfflineBenchCorpusDir()}, TrainerOptions{},
                                   shards, build_dir)
                      .ok());
  OfflineBuildOptions options;
  options.num_threads = 4;
  UNIDETECT_CHECK(RunOfflineBuild(build_dir, options).ok());
  for (auto _ : state) {
    auto merged = MergeOfflineBuild(build_dir);
    UNIDETECT_CHECK(merged.ok());
    benchmark::DoNotOptimize(merged->num_subsets());
  }
}
BENCHMARK(BM_OfflineMerge)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Layered base+delta serving (DESIGN.md section 15). Fixtures: one
// synthetic base and a chain of small deltas linked by artifact id, so
// the benches exercise exactly the manifest checks ApplyDelta runs in
// production.

struct DeltaChainFixture {
  std::string base_path;
  std::vector<std::string> delta_paths;
};

const DeltaChainFixture& BenchDeltaChain(size_t num_deltas) {
  static auto* const cache = new std::map<size_t, DeltaChainFixture>();
  auto it = cache->find(num_deltas);
  if (it != cache->end()) return it->second;
  const std::string tmp = std::filesystem::temp_directory_path().string();
  DeltaChainFixture f;
  const std::string base_bytes =
      EncodeModelSnapshotV2(BuildSyntheticModel(400000));
  f.base_path = tmp + "/unidetect_bench_delta_base.udsnap";
  UNIDETECT_CHECK(WriteStringToFile(f.base_path, base_bytes).ok());
  const uint64_t base_id = *SnapshotArtifactId(base_bytes);
  uint64_t parent_id = base_id;
  const Model delta_model = BuildSyntheticModel(20000);
  for (size_t i = 0; i < num_deltas; ++i) {
    DeltaManifest manifest;
    manifest.base_id = base_id;
    manifest.parent_id = parent_id;
    manifest.depth = i + 1;
    const std::string bytes = EncodeModelSnapshotV2(
        delta_model, ObservationEncoding::kF32, &manifest);
    const std::string path = tmp + "/unidetect_bench_delta_" +
                             std::to_string(num_deltas) + "_" +
                             std::to_string(i) + ".udsnap";
    UNIDETECT_CHECK(WriteStringToFile(path, bytes).ok());
    parent_id = *SnapshotArtifactId(bytes);
    f.delta_paths.push_back(path);
  }
  return cache->emplace(num_deltas, std::move(f)).first->second;
}

// Incremental publish latency: DetectionService::ApplyDelta end to end
// (identity read, manifest chain validation, mmap open, engine
// construction, pointer swap). The acceptance bound: within ~10x of the
// BM_ReloadLatency v2 floor — a delta publish is a Reload plus one
// chain check, never a full-model decode.
void BM_ApplyDelta(benchmark::State& state) {
  const DeltaChainFixture& f = BenchDeltaChain(1);
  for (auto _ : state) {
    state.PauseTiming();
    auto service = DetectionService::Create(f.base_path);
    UNIDETECT_CHECK(service.ok());
    state.ResumeTiming();
    UNIDETECT_CHECK((*service)->ApplyDelta(f.delta_paths[0]).ok());
  }
}
BENCHMARK(BM_ApplyDelta)->Unit(benchmark::kMicrosecond);

// LR query through a K-layer stack: the read-side overlay sums counts
// across layers, so cost should grow linearly in resident layers and
// K=0 must match the flat-model numbers (the stack adds one indirection,
// not a merge).
void BM_LrQueryLayered(benchmark::State& state) {
  static auto* const layer_cache =
      new std::map<int64_t, std::shared_ptr<const ModelStack>>();
  auto it = layer_cache->find(state.range(0));
  if (it == layer_cache->end()) {
    std::vector<std::shared_ptr<const Model>> layers;
    layers.push_back(
        std::make_shared<const Model>(BuildSyntheticModel(400000)));
    for (int64_t i = 0; i < state.range(0); ++i) {
      layers.push_back(
          std::make_shared<const Model>(BuildSyntheticModel(20000)));
    }
    it = layer_cache
             ->emplace(state.range(0),
                       std::make_shared<const ModelStack>(std::move(layers)))
             .first;
  }
  const ModelStack& stack = *it->second;
  Rng rng(43);
  std::vector<double> thetas(256);
  for (auto& t : thetas) t = rng.Uniform(0, 1000);
  size_t i = 0;
  for (auto _ : state) {
    const double t2 = thetas[i % thetas.size()];
    const double t1 = t2 / 2;
    const FeatureKey key{static_cast<uint64_t>(i % 16)};
    ++i;
    benchmark::DoNotOptimize(
        stack.LikelihoodRatio(ErrorClass::kSpelling, key, t1, t2));
  }
}
BENCHMARK(BM_LrQueryLayered)
    ->ArgName("K")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(5)
    ->Unit(benchmark::kMicrosecond);

// Full compaction cycle: fold base+deltas with Model::Merge, encode,
// write, CAS-swap the service onto the fresh base (Compactor::
// CompactOnce). Dominated by the fold + encode, so it amortizes across
// however many deltas accumulated since the last cycle.
void BM_Compact(benchmark::State& state) {
  const DeltaChainFixture& f =
      BenchDeltaChain(static_cast<size_t>(state.range(0)));
  CompactorOptions options;
  options.output_path = std::filesystem::temp_directory_path().string() +
                        "/unidetect_bench_compacted.udsnap";
  for (auto _ : state) {
    state.PauseTiming();
    auto service = DetectionService::Create(f.base_path);
    UNIDETECT_CHECK(service.ok());
    for (const std::string& path : f.delta_paths) {
      UNIDETECT_CHECK((*service)->ApplyDelta(path).ok());
    }
    Compactor compactor(service->get(), options);
    state.ResumeTiming();
    auto compacted = compactor.CompactOnce();
    UNIDETECT_CHECK(compacted.ok() && *compacted);
  }
}
BENCHMARK(BM_Compact)->ArgName("K")->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace unidetect

BENCHMARK_MAIN();
