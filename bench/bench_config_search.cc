// Configuration search (Definition 5): evaluates every (metric,
// perturbation) pairing by how many statistically surprising discoveries
// it makes on a target corpus with injected errors.
//
// Expected shape (Section 2.2.3's discussion): the aligned pairings —
// (max-MAD, drop-most-outlying), (MPD, drop-closest-pair),
// (UR, drop-duplicates) — dominate; mismatched pairings (e.g. UR with
// drop-closest-pair) barely move their metric and discover almost
// nothing, which is exactly the signal that identifies good
// configurations without labels.

#include <cstdio>

#include "eval/injection.h"
#include "search/config_search.h"
#include "util/logging.h"

using namespace unidetect;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Definition 5: configuration search over (M, P) ==\n");

  const AnnotatedCorpus background = GenerateCorpus(WebCorpusSpec(8000, 1));
  AnnotatedCorpus targets = GenerateCorpus(WebCorpusSpec(2000, 555));
  InjectionSpec injection;
  const GroundTruth truth = InjectErrors(&targets, injection);
  std::printf("background: %zu tables; targets: %zu tables with %zu "
              "injected errors\n\n",
              background.corpus.tables.size(), targets.corpus.tables.size(),
              truth.errors.size());

  ConfigSearchOptions options;
  const std::vector<ConfigResult> results =
      SearchConfigurations(background.corpus, targets.corpus, options);

  std::printf("%-42s %12s %12s\n", "configuration (m + P)", "discoveries",
              "candidates");
  for (const auto& result : results) {
    std::printf("%-42s %12zu %12zu\n", result.config.ToString().c_str(),
                result.discoveries, result.candidates);
  }
  std::printf(
      "\nexpected shape: aligned pairings (max-MAD + drop-most-outlying, "
      "MPD + drop-closest-pair, UR + drop-duplicates) rank top; "
      "mismatched pairings discover ~nothing.\n");
  return 0;
}
