// Reproduces Table 2: summary statistics of the three table corpora
// (total #tables, avg #columns per table, avg #rows per table).
//
// Absolute counts are scaled down from the paper's proprietary crawls
// (135M / 3.6M / 489K tables); the *shape* — WEB largest, WIKI a smaller
// web-style subset, Enterprise far fewer but much taller tables — is
// preserved by the corpus presets.

#include <cstdio>

#include "corpus/generator.h"
#include "util/logging.h"

using namespace unidetect;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Table 2: summary statistics of table corpora ==\n");
  std::printf("%-12s %12s %18s %16s\n", "corpus", "total#tables",
              "avg-#cols/table", "avg-#rows/table");

  const struct {
    CorpusSpec spec;
  } presets[] = {
      {WebCorpusSpec(20000, 1)},
      {WikiCorpusSpec(5000, 2)},
      {EnterpriseCorpusSpec(1200, 3)},
  };
  for (const auto& preset : presets) {
    const AnnotatedCorpus generated = GenerateCorpus(preset.spec);
    const CorpusStats stats = generated.corpus.Stats();
    std::printf("%-12s %12zu %18.1f %16.1f\n", generated.corpus.name.c_str(),
                stats.num_tables, stats.avg_columns_per_table,
                stats.avg_rows_per_table);
  }
  std::printf(
      "\npaper reference: WEB 135M tables / 4.6 cols / 20.7 rows; "
      "WIKI 3.6M / 5.7 / 18; Enterprise 489K / 4.7 / 2932\n");
  return 0;
}
