// Reproduces Figure 9: quality of predicted errors on WIKI^T (panels as
// in Figure 8). The model is trained on WEB and executed unchanged on the
// Wikipedia-style corpus, as in Section 4.1.

#include <cstdio>

#include "eval/harness.h"
#include "util/logging.h"

using namespace unidetect;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== Figure 9: error detection quality on WIKI^T ==\n");

  ExperimentConfig config;
  config.injection.seed = 101;
  CorpusSpec test_spec = WikiCorpusSpec(/*num_tables=*/2500, /*seed=*/888);
  test_spec.name = "WIKI^T";
  const Experiment experiment = BuildExperiment(test_spec, config);

  std::printf("test corpus: %zu tables, %zu injected errors\n",
              experiment.test.corpus.tables.size(),
              experiment.truth.errors.size());
  RunFigurePanels("WIKI^T", experiment);
  return 0;
}
