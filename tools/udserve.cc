// udserve: stand up a DetectionServer over a model snapshot.
//
//   $ udserve --model m.udsnap [--port 8080] [--cache-bytes 8388608]
//             [--queue 256] [--batch-tables 64] [--batch-delay-us 500]
//             [--detect-threads 1] [--io-threads 1] [--max-in-flight 256]
//             [--accept-mode auto|reuseport|handoff] [--no-coalesce]
//             [--train-if-missing]
//
// Serves both protocols on one port: UDWIRE (udclient, bench_server)
// and HTTP (curl /healthz, /statz, /metrics in Prometheus text format,
// POST /detect with a CSV body). --io-threads > 1 shards the reactor
// across SO_REUSEPORT listeners (or a round-robin accept handoff);
// --max-in-flight caps pipelined requests per connection.
// --train-if-missing trains a small demo model when --model does not
// load, so the tool is self-contained for smoke tests. SIGINT/SIGTERM
// shut down gracefully: the listener closes, admitted requests finish,
// pending responses flush.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "corpus/generator.h"
#include "learn/trainer.h"
#include "server/server.h"
#include "serving/detection_service.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int /*sig*/) { g_shutdown.store(true); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model PATH [--port N] [--cache-bytes N] [--queue N]\n"
      "          [--batch-tables N] [--batch-delay-us N] [--detect-threads N]\n"
      "          [--io-threads N] [--max-in-flight N]\n"
      "          [--accept-mode auto|reuseport|handoff]\n"
      "          [--no-coalesce] [--train-if-missing]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  std::string model_path;
  uint64_t cache_bytes = 8u << 20;
  bool train_if_missing = false;
  ServerOptions options;
  options.port = 8080;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      model_path = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--cache-bytes") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      cache_bytes = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--queue") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.coalescer.queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--batch-tables") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.coalescer.max_batch_tables = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--batch-delay-us") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.coalescer.max_batch_delay =
          std::chrono::microseconds(std::atoll(v));
    } else if (arg == "--detect-threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.coalescer.detect_threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--io-threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.io_threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-in-flight") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      options.max_in_flight_per_connection =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--accept-mode") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (std::strcmp(v, "auto") == 0) {
        options.accept_mode = ServerOptions::AcceptMode::kAuto;
      } else if (std::strcmp(v, "reuseport") == 0) {
        options.accept_mode = ServerOptions::AcceptMode::kReusePort;
      } else if (std::strcmp(v, "handoff") == 0) {
        options.accept_mode = ServerOptions::AcceptMode::kHandoff;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--no-coalesce") {
      options.coalescer.coalesce = false;
    } else if (arg == "--train-if-missing") {
      train_if_missing = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (model_path.empty()) return Usage(argv[0]);

  if (!Model::Load(model_path).ok()) {
    if (!train_if_missing) {
      std::fprintf(stderr, "udserve: no loadable model at %s "
                   "(pass --train-if-missing to train a demo model)\n",
                   model_path.c_str());
      return 1;
    }
    std::printf("udserve: training a demo model into %s...\n",
                model_path.c_str());
    Trainer trainer;
    const Model model =
        trainer.Train(GenerateCorpus(WebCorpusSpec(2000, 7)).corpus);
    const Status saved = model.Save(model_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "udserve: save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
  }

  auto service = DetectionService::Create(model_path, UniDetectOptions{},
                                          cache_bytes);
  if (!service.ok()) {
    std::fprintf(stderr, "udserve: %s\n", service.status().ToString().c_str());
    return 1;
  }

  DetectionServer server(service->get(), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "udserve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("udserve: serving %s on port %u with %zu IO shard%s%s "
              "(UDWIRE + HTTP /healthz /statz /metrics /detect)\n",
              model_path.c_str(), server.port(), server.io_threads(),
              server.io_threads() == 1 ? "" : "s",
              server.io_threads() > 1
                  ? (server.accept_handoff() ? " [accept handoff]"
                                             : " [SO_REUSEPORT]")
                  : "");

  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  while (!g_shutdown.load()) pause();

  std::printf("udserve: draining...\n");
  server.Stop();
  std::fputs(server.StatzJson().c_str(), stdout);
  return 0;
}
