// offline_build: CLI front-end for the sharded, resumable offline build
// pipeline (src/offline/, DESIGN.md section 11).
//
//   $ offline_build plan <build_dir> --shards N <input_dir> [...]
//   $ offline_build add-inputs <build_dir> --shards N <input_dir> [...]
//   $ offline_build build <build_dir> [--threads N] [--stop-after K]
//   $ offline_build resume <build_dir> [--threads N]
//   $ offline_build merge <build_dir> <model_out>
//   $ offline_build verify <build_dir> [--check-inputs]
//   $ offline_build delta <base.udsnap> <delta_out> [--parent <artifact>]
//                         [--threads N] <input_dir> [...]
//
// `build` and `resume` are the same operation — RunOfflineBuild always
// skips journal-verified shards — the two names exist so operator intent
// ("start this" vs "pick this back up") reads correctly in shell history.
// `--stop-after K` builds at most K shard-stages then exits 3, which is
// how the crash-resume tests and docs simulate preemption.
//
// `delta` trains over only the listed input dirs and writes a delta
// UDSNAP artifact chained to <base.udsnap> (src/offline/delta_build.h);
// `--parent` names the previous delta when extending a chain past depth
// 1. The output is what `DetectionService::ApplyDelta` consumes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "learn/trainer.h"
#include "offline/delta_build.h"
#include "offline/offline_build.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  offline_build plan <build_dir> --shards N <input_dir> [...]\n"
      "  offline_build add-inputs <build_dir> --shards N <input_dir> [...]\n"
      "  offline_build build <build_dir> [--threads N] [--stop-after K]\n"
      "  offline_build resume <build_dir> [--threads N]\n"
      "  offline_build merge <build_dir> <model_out>\n"
      "  offline_build verify <build_dir> [--check-inputs]\n"
      "  offline_build delta <base.udsnap> <delta_out> "
      "[--parent <artifact>] [--threads N] <input_dir> [...]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "offline_build: %s\n", status.ToString().c_str());
  return 1;
}

/// \brief Consumes `--flag <value>` at argv[*i] if present.
bool ConsumeSizeFlag(const char* flag, char** argv, int argc, int* i,
                     size_t* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) return false;
  *out = static_cast<size_t>(std::strtoull(argv[*i + 1], nullptr, 10));
  *i += 2;
  return true;
}

int Plan(int argc, char** argv, bool incremental) {
  if (argc < 6) return Usage();
  const std::string build_dir = argv[2];
  size_t num_shards = 0;
  std::vector<std::string> input_dirs;
  for (int i = 3; i < argc;) {
    if (ConsumeSizeFlag("--shards", argv, argc, &i, &num_shards)) continue;
    input_dirs.push_back(argv[i++]);
  }
  if (num_shards == 0 || input_dirs.empty()) return Usage();
  const Status status =
      incremental
          ? AddOfflineInputs(build_dir, input_dirs, num_shards)
          : PlanOfflineBuild(input_dirs, TrainerOptions{}, num_shards,
                             build_dir);
  if (!status.ok()) return Fail(status);
  std::printf("%s %s: %zu shard(s) over %zu input dir(s)\n",
              incremental ? "Extended" : "Planned", build_dir.c_str(),
              num_shards, input_dirs.size());
  return 0;
}

int Build(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string build_dir = argv[2];
  size_t stop_after = 0;
  OfflineBuildOptions options;
  for (int i = 3; i < argc;) {
    if (ConsumeSizeFlag("--threads", argv, argc, &i, &options.num_threads)) {
      continue;
    }
    if (ConsumeSizeFlag("--stop-after", argv, argc, &i, &stop_after)) continue;
    return Usage();
  }
  if (options.num_threads == 0) options.num_threads = 1;
  size_t started = 0;
  if (stop_after > 0) {
    options.keep_going = [&started, stop_after](BuildStage, size_t) {
      return started++ < stop_after;
    };
  }
  const auto report = RunOfflineBuild(build_dir, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("Built %zu, skipped %zu, rebuilt %zu shard-stage(s); %s\n",
              report->built, report->skipped, report->rebuilt,
              report->completed ? "build complete"
                                : "stopped early (resume to continue)");
  return report->completed ? 0 : 3;
}

int Merge(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Status status = MergeOfflineBuildToFile(argv[2], argv[3]);
  if (!status.ok()) return Fail(status);
  std::printf("Merged %s -> %s\n", argv[2], argv[3]);
  return 0;
}

int Delta(int argc, char** argv) {
  if (argc < 5) return Usage();
  DeltaBuildSpec spec;
  spec.base_path = argv[2];
  spec.out_path = argv[3];
  for (int i = 4; i < argc;) {
    if (std::strcmp(argv[i], "--parent") == 0 && i + 1 < argc) {
      spec.parent_path = argv[i + 1];
      i += 2;
      continue;
    }
    if (ConsumeSizeFlag("--threads", argv, argc, &i, &spec.num_threads)) {
      continue;
    }
    spec.input_dirs.push_back(argv[i++]);
  }
  if (spec.input_dirs.empty()) return Usage();
  if (spec.num_threads == 0) spec.num_threads = 1;
  const auto report = BuildDeltaSnapshot(spec);
  if (!report.ok()) return Fail(report.status());
  std::printf("Delta %s: %zu table(s), %llu bytes, depth %llu "
              "(base %016llx, parent %016llx, id %016llx)\n",
              spec.out_path.c_str(), report->tables,
              static_cast<unsigned long long>(report->encoded_bytes),
              static_cast<unsigned long long>(report->manifest.depth),
              static_cast<unsigned long long>(report->manifest.base_id),
              static_cast<unsigned long long>(report->manifest.parent_id),
              static_cast<unsigned long long>(report->artifact_id));
  return 0;
}

int Verify(int argc, char** argv) {
  if (argc < 3) return Usage();
  const bool check_inputs =
      argc > 3 && std::strcmp(argv[3], "--check-inputs") == 0;
  const auto report = VerifyOfflineBuild(argv[2], check_inputs);
  if (!report.ok()) return Fail(report.status());
  std::printf("%zu shard(s): %zu index partial(s), %zu observation "
              "partial(s) verified",
              report->shards, report->index_done, report->obs_done);
  if (check_inputs) std::printf("; %zu input file(s) re-hashed",
                                report->inputs_checked);
  std::printf("; %s\n", report->mergeable() ? "mergeable" : "incomplete");
  return report->mergeable() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "plan") == 0) return Plan(argc, argv, false);
  if (std::strcmp(cmd, "add-inputs") == 0) return Plan(argc, argv, true);
  if (std::strcmp(cmd, "build") == 0 || std::strcmp(cmd, "resume") == 0) {
    return Build(argc, argv);
  }
  if (std::strcmp(cmd, "merge") == 0) return Merge(argc, argv);
  if (std::strcmp(cmd, "verify") == 0) return Verify(argc, argv);
  if (std::strcmp(cmd, "delta") == 0) return Delta(argc, argv);
  return Usage();
}
