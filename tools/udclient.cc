// udclient: command-line UDWIRE client against a running udserve.
//
//   $ udclient --port 8080 detect table.csv [more.csv ...]
//       [--deadline-ms N] [--alpha X] [--host 127.0.0.1]
//   $ udclient --port 8080 statz     # GET /statz over the HTTP adapter
//   $ udclient --port 8080 health    # GET /healthz
//
// `detect` sends every CSV as one table in a single request and prints
// per-table findings as JSON. Typed server outcomes (Overloaded,
// DeadlineExceeded, ...) print as errors with their wire-code name and
// exit nonzero — distinguishable from transport failures by message.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "detect/finding_json.h"
#include "server/client.h"
#include "table/table.h"
#include "util/csv.h"

using namespace unidetect;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host IP] detect CSV... "
               "[--deadline-ms N] [--alpha X]\n"
               "       %s --port N [--host IP] statz|health\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string command;
  std::vector<std::string> csv_paths;
  uint32_t deadline_ms = 0;
  double alpha = -1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      deadline_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      alpha = std::atof(v);
    } else if (command.empty()) {
      command = arg;
    } else {
      csv_paths.push_back(arg);
    }
  }
  if (port == 0 || command.empty()) return Usage(argv[0]);

  if (command == "statz" || command == "health") {
    const auto response = HttpFetch(
        host, port, "GET", command == "statz" ? "/statz" : "/healthz");
    if (!response.ok()) {
      std::fprintf(stderr, "udclient: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    // Print just the body (everything past the blank line).
    const size_t split = response->find("\r\n\r\n");
    std::fputs(split == std::string::npos ? response->c_str()
                                          : response->c_str() + split + 4,
               stdout);
    return 0;
  }

  if (command != "detect" || csv_paths.empty()) return Usage(argv[0]);

  wire::DetectRequest request;
  request.request_id = 1;
  request.deadline_ms = deadline_ms;
  if (alpha >= 0) {
    request.options.has_override = true;
    request.options.alpha = alpha;
    // Leave every class enabled; the override narrows only alpha.
    request.options.detect_mask = 0x1F;
  }
  for (const std::string& path : csv_paths) {
    auto csv = ReadCsvFile(path);
    if (!csv.ok()) {
      std::fprintf(stderr, "udclient: %s: %s\n", path.c_str(),
                   csv.status().ToString().c_str());
      return 1;
    }
    auto table = Table::FromCsv(*csv, path);
    if (!table.ok()) {
      std::fprintf(stderr, "udclient: %s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    request.tables.push_back(std::move(table).ValueOrDie());
  }

  auto client = UdwireClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "udclient: %s\n", client.status().ToString().c_str());
    return 1;
  }
  auto response = client->Detect(request);
  if (!response.ok()) {
    std::fprintf(stderr, "udclient: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (response->code != wire::WireCode::kOk) {
    std::fprintf(stderr, "udclient: server says %s: %s\n",
                 wire::WireCodeName(response->code), response->error.c_str());
    return 1;
  }
  std::printf("{\"generation\":%llu,\"tables\":[\n",
              static_cast<unsigned long long>(response->generation));
  for (size_t i = 0; i < response->per_table.size(); ++i) {
    std::printf("{\"table\":\"%s\",\"findings\":%s}%s\n",
                csv_paths[i].c_str(),
                FindingsToJson(response->per_table[i]).c_str(),
                i + 1 < response->per_table.size() ? "," : "");
  }
  std::printf("]}\n");
  return 0;
}
