// udclient: command-line UDWIRE client against a running udserve.
//
//   $ udclient --port 8080 detect table.csv [more.csv ...]
//       [--deadline-ms N] [--timeout-ms N] [--alpha X] [--pipeline]
//       [--host 127.0.0.1]
//   $ udclient --port 8080 statz     # GET /statz over the HTTP adapter
//   $ udclient --port 8080 health    # GET /healthz
//   $ udclient --port 8080 metrics   # GET /metrics (Prometheus text)
//
// `detect` rides the pipelined AsyncUdwireClient. By default every CSV
// travels as one table in a single request; --pipeline sends one
// request per CSV down the same connection concurrently (completions
// arrive in any order, output stays in input order). --deadline-ms is
// the server-side queue deadline; --timeout-ms bounds the wait
// client-side. Typed server outcomes (Overloaded, DeadlineExceeded,
// ...) print as errors with their wire-code name and exit nonzero —
// distinguishable from transport failures by message.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "detect/finding_json.h"
#include "server/client.h"
#include "table/table.h"
#include "util/csv.h"

using namespace unidetect;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host IP] detect CSV... "
               "[--deadline-ms N] [--timeout-ms N] [--alpha X] [--pipeline]\n"
               "       %s --port N [--host IP] statz|health|metrics\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string command;
  std::vector<std::string> csv_paths;
  uint32_t deadline_ms = 0;
  int64_t timeout_ms = 0;
  double alpha = -1.0;
  bool pipeline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      deadline_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      timeout_ms = std::atoll(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      alpha = std::atof(v);
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else if (command.empty()) {
      command = arg;
    } else {
      csv_paths.push_back(arg);
    }
  }
  if (port == 0 || command.empty()) return Usage(argv[0]);

  if (command == "statz" || command == "health" || command == "metrics") {
    const char* target = command == "statz"
                             ? "/statz"
                             : (command == "health" ? "/healthz" : "/metrics");
    const auto response = HttpFetch(host, port, "GET", target);
    if (!response.ok()) {
      std::fprintf(stderr, "udclient: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    // Print just the body (everything past the blank line).
    const size_t split = response->find("\r\n\r\n");
    std::fputs(split == std::string::npos ? response->c_str()
                                          : response->c_str() + split + 4,
               stdout);
    return 0;
  }

  if (command != "detect" || csv_paths.empty()) return Usage(argv[0]);

  wire::RequestOptions options;
  if (alpha >= 0) {
    options.has_override = true;
    options.alpha = alpha;
    // Leave every class enabled; the override narrows only alpha.
    options.detect_mask = 0x1F;
  }

  std::vector<Table> tables;
  for (const std::string& path : csv_paths) {
    auto csv = ReadCsvFile(path);
    if (!csv.ok()) {
      std::fprintf(stderr, "udclient: %s: %s\n", path.c_str(),
                   csv.status().ToString().c_str());
      return 1;
    }
    auto table = Table::FromCsv(*csv, path);
    if (!table.ok()) {
      std::fprintf(stderr, "udclient: %s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    tables.push_back(std::move(table).ValueOrDie());
  }

  auto client = AsyncUdwireClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "udclient: %s\n", client.status().ToString().c_str());
    return 1;
  }

  // Gather one response per request; in pipeline mode each CSV is its
  // own request, otherwise all tables share request 0.
  std::vector<wire::DetectResponse> responses;
  if (pipeline) {
    responses.resize(tables.size());
    std::vector<uint64_t> ids;
    // DetectSync would serialize; submit everything first, then the
    // blocking waits below ride completions already in flight.
    struct Waiter {
      Mutex mu;
      CondVar cv;
      size_t remaining;
    } waiter;
    waiter.remaining = tables.size();
    for (size_t i = 0; i < tables.size(); ++i) {
      wire::DetectRequest request;
      request.deadline_ms = deadline_ms;
      request.options = options;
      request.tables.push_back(std::move(tables[i]));
      (*client)->Detect(
          std::move(request),
          [&responses, &waiter, i](wire::DetectResponse response) {
            MutexLock lock(&waiter.mu);
            responses[i] = std::move(response);
            --waiter.remaining;
            waiter.cv.NotifyAll();
          },
          timeout_ms);
    }
    MutexLock lock(&waiter.mu);
    while (waiter.remaining != 0) waiter.cv.Wait(waiter.mu);
  } else {
    wire::DetectRequest request;
    request.deadline_ms = deadline_ms;
    request.options = options;
    request.tables = std::move(tables);
    responses.push_back((*client)->DetectSync(std::move(request), timeout_ms));
  }

  for (const wire::DetectResponse& response : responses) {
    if (response.code != wire::WireCode::kOk) {
      std::fprintf(stderr, "udclient: server says %s: %s\n",
                   wire::WireCodeName(response.code), response.error.c_str());
      return 1;
    }
  }

  std::printf("{\"generation\":%llu,\"tables\":[\n",
              static_cast<unsigned long long>(responses[0].generation));
  size_t printed = 0;
  const size_t total = pipeline ? responses.size() : responses[0].per_table.size();
  for (size_t r = 0; r < responses.size(); ++r) {
    for (size_t t = 0; t < responses[r].per_table.size(); ++t) {
      const size_t path_index = pipeline ? r : t;
      std::printf("{\"table\":\"%s\",\"findings\":%s}%s\n",
                  csv_paths[path_index].c_str(),
                  FindingsToJson(responses[r].per_table[t]).c_str(),
                  ++printed < total ? "," : "");
    }
  }
  std::printf("]}\n");
  return 0;
}
