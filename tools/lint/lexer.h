// Shared token stream for every lint pass (tools/lint/).
//
// One tokenizer feeds all passes: a file is lexed exactly once and each
// registered pass walks the same token vector. The lexer is a
// heuristic C++ lexer — it understands comments, string/char literals
// (including raw strings), preprocessor lines, numbers, identifiers and
// two-character operators — which is all the token-level passes need.
// It deliberately does not preprocess or parse; passes are pattern
// matchers over tokens, not semantic analyses (DESIGN.md section 14).
//
// NOLINT escapes are collected here, per pass: `// NOLINT(<pass>)` on a
// line suppresses that pass's findings on the same line, and
// `// NOLINTNEXTLINE(<pass>)` suppresses them on the following line.
// Several passes may be named comma-separated: `NOLINT(determinism,
// unsafe-bytes)`. The pass name is required — a bare NOLINT suppresses
// nothing — so every escape names the invariant it waives.

#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace unidetect {
namespace lint {

enum class TokKind { kIdent, kNumber, kPunct, kString };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

struct Lexed {
  std::vector<Tok> toks;
  // line -> pass names suppressed on that line (NOLINT(<pass>) on the
  // line itself or NOLINTNEXTLINE(<pass>) on the line above).
  std::map<int, std::set<std::string>> nolint;

  bool Suppressed(int line, std::string_view pass) const {
    auto it = nolint.find(line);
    return it != nolint.end() && it->second.count(std::string(pass)) > 0;
  }
};

Lexed Tokenize(std::string_view src);

// -- token helpers shared by the passes ---------------------------------

bool TokIs(const std::vector<Tok>& t, size_t i, std::string_view text);
bool IsIdent(const std::vector<Tok>& t, size_t i);

/// Skips a balanced template-argument list. `i` must index the `<`.
/// Returns the index just past the matching `>`, or `i` if this does not
/// look like a template argument list (statement end reached first).
size_t SkipAngles(const std::vector<Tok>& t, size_t i);

/// First template argument of the list opened at `i` (the `<`); empty if
/// none. Used for pointer-keyed container detection.
std::vector<const Tok*> FirstTemplateArg(const std::vector<Tok>& t, size_t i);

}  // namespace lint
}  // namespace unidetect
