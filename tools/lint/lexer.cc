#include "lint/lexer.h"

#include <algorithm>
#include <array>

namespace unidetect {
namespace lint {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// A pass name in a NOLINT list: lowercase identifiers joined by '-'.
bool IsPassNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
         c == '_';
}

// Parses the "(a, b)" list that follows a NOLINT marker at comment[i]
// and records each named pass for `line`.
void RecordNolintList(std::string_view comment, size_t i, int line,
                      Lexed* out) {
  if (i >= comment.size() || comment[i] != '(') return;
  ++i;
  while (i < comment.size() && comment[i] != ')') {
    while (i < comment.size() && (comment[i] == ' ' || comment[i] == ',')) {
      ++i;
    }
    size_t start = i;
    while (i < comment.size() && IsPassNameChar(comment[i])) ++i;
    if (i > start) {
      out->nolint[line].insert(std::string(comment.substr(start, i - start)));
    }
    if (i == start) break;  // unexpected character; stop parsing the list
  }
}

// Records NOLINT markers found inside a comment span.
void ScanCommentForNolint(std::string_view comment, int line, Lexed* out) {
  constexpr std::string_view kNext = "NOLINTNEXTLINE";
  constexpr std::string_view kHere = "NOLINT";
  int cur_line = line;
  for (size_t i = 0; i < comment.size(); ++i) {
    if (comment[i] == '\n') ++cur_line;
    if (comment.compare(i, kNext.size(), kNext) == 0) {
      RecordNolintList(comment, i + kNext.size(), cur_line + 1, out);
      i += kNext.size() - 1;
    } else if (comment.compare(i, kHere.size(), kHere) == 0) {
      RecordNolintList(comment, i + kHere.size(), cur_line, out);
      i += kHere.size() - 1;
    }
  }
}

}  // namespace

Lexed Tokenize(std::string_view src) {
  Lexed out;
  static const std::array<std::string_view, 13> kTwoCharOps = {
      "<<", ">>", "+=", "-=", "->", "::", "==", "!=",
      "<=", ">=", "&&", "||", "++"};
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  const size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      ScanCommentForNolint(src.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      std::string_view body = src.substr(i, end - i);
      ScanCommentForNolint(body, line, &out);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = (end == n) ? n : end + 2;
      continue;
    }
    // String literal (with minimal raw-string support).
    if (c == '"') {
      bool raw = false;
      if (!out.toks.empty() && out.toks.back().kind == TokKind::kIdent) {
        const std::string& prev = out.toks.back().text;
        if (prev == "R" || prev == "u8R" || prev == "uR" || prev == "UR" ||
            prev == "LR") {
          raw = true;
          out.toks.pop_back();
        }
      }
      size_t start = i;
      if (raw) {
        size_t open = src.find('(', i);
        std::string delim =
            ")" + std::string(src.substr(i + 1, open - i - 1)) + "\"";
        size_t end = src.find(delim, open);
        if (end == std::string_view::npos) end = n;
        else end += delim.size();
        std::string_view body = src.substr(start, end - start);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.toks.push_back({TokKind::kString, "\"\"", line});
        i = end;
      } else {
        ++i;
        while (i < n && src[i] != '"') {
          if (src[i] == '\\' && i + 1 < n) ++i;
          ++i;
        }
        if (i < n) ++i;
        out.toks.push_back({TokKind::kString, "\"\"", line});
      }
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      out.toks.push_back({TokKind::kString, "''", line});
      continue;
    }
    // Number.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(src[i + 1]))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.toks.push_back(
          {TokKind::kNumber, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.toks.push_back(
          {TokKind::kIdent, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Punctuation: longest-match two-char operators first.
    if (i + 1 < n) {
      std::string_view two = src.substr(i, 2);
      bool matched = false;
      for (std::string_view op : kTwoCharOps) {
        if (two == op) {
          out.toks.push_back({TokKind::kPunct, std::string(op), line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    out.toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool TokIs(const std::vector<Tok>& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}

bool IsIdent(const std::vector<Tok>& t, size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

size_t SkipAngles(const std::vector<Tok>& t, size_t i) {
  int depth = 0;
  const size_t limit = std::min(t.size(), i + 400);
  for (size_t j = i; j < limit; ++j) {
    const std::string& x = t[j].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return j + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (x == ";" || x == "{" || x == "}") {
      return i;  // comparison, not a template
    }
  }
  return i;
}

std::vector<const Tok*> FirstTemplateArg(const std::vector<Tok>& t, size_t i) {
  std::vector<const Tok*> arg;
  int angle = 0;
  int paren = 0;
  const size_t limit = std::min(t.size(), i + 400);
  for (size_t j = i; j < limit; ++j) {
    const std::string& x = t[j].text;
    if (x == "<") {
      if (++angle == 1) continue;
    } else if (x == ">" || x == ">>") {
      if (angle == 1) return arg;
      angle -= (x == ">>") ? 2 : 1;
      if (angle <= 0) return arg;
    } else if (x == "(") {
      ++paren;
    } else if (x == ")") {
      if (--paren < 0) return {};
    } else if (x == "," && angle == 1 && paren == 0) {
      return arg;
    } else if (x == ";" || x == "{" || x == "}") {
      return {};  // not a template argument list after all
    }
    if (angle >= 1) arg.push_back(&t[j]);
    if (arg.size() > 100) return arg;
  }
  return {};
}

}  // namespace lint
}  // namespace unidetect
