// Pass registry and driver-facing API of the lint library. Tokenizes a
// translation unit once, runs the selected passes over the shared token
// stream, applies per-pass NOLINT suppression, and merges findings into
// a deterministic (file, line, pass, check) order.

#include "lint/lint.h"

#include <algorithm>
#include <cstdio>

#include "lint/lexer.h"
#include "lint/passes.h"

namespace unidetect {
namespace lint {

namespace {

using PassFn = void (*)(const Lexed&, const PassContext&,
                        std::vector<Finding>*);

struct PassEntry {
  const char* name;
  PassFn run;
};

// Execution order is also report order; keep determinism first so the
// original single-pass behavior is the prefix of the new one.
constexpr PassEntry kRegistry[] = {
    {kDeterminismPass, RunDeterminismPass},
    {kUnsafeBytesPass, RunUnsafeBytesPass},
    {kCheckedArithmeticPass, RunCheckedArithmeticPass},
};

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Options OptionsForPath(std::string_view path) {
  Options options;
  if (path.find("util/random.") != std::string_view::npos) {
    options.allow_random_primitives = true;
  }
  if (path.find("util/bounded_reader.h") != std::string_view::npos ||
      path.find("util/binary_io.") != std::string_view::npos) {
    options.trusted_cursor_module = true;
  }
  return options;
}

const std::vector<std::string>& PassNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const PassEntry& entry : kRegistry) names.push_back(entry.name);
    return names;
  }();
  return kNames;
}

bool IsPassName(std::string_view name) {
  for (const PassEntry& entry : kRegistry) {
    if (name == entry.name) return true;
  }
  return false;
}

LintResult LintSource(std::string_view path, std::string_view source,
                      const std::vector<std::string>& passes,
                      const Options& options) {
  Lexed lexed = Tokenize(source);
  PassContext context{std::string(path), options};
  std::vector<Finding> raw;
  for (const PassEntry& entry : kRegistry) {
    if (!passes.empty() &&
        std::find(passes.begin(), passes.end(), entry.name) == passes.end()) {
      continue;
    }
    entry.run(lexed, context, &raw);
  }

  LintResult result;
  for (auto& finding : raw) {
    if (lexed.Suppressed(finding.line, finding.pass)) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(finding));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.pass != b.pass) return a.pass < b.pass;
              return a.check < b.check;
            });
  return result;
}

LintResult LintSource(std::string_view path, std::string_view source) {
  return LintSource(path, source, {}, OptionsForPath(path));
}

std::string ReportJson(size_t files_scanned,
                       const std::vector<std::string>& passes,
                       const LintResult& merged) {
  std::string out = "{\"files_scanned\":" + std::to_string(files_scanned) +
                    ",\"passes\":[";
  const std::vector<std::string>& listed =
      passes.empty() ? PassNames() : passes;
  for (size_t i = 0; i < listed.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(listed[i]) + "\"";
  }
  out += "],\"suppressed\":" + std::to_string(merged.suppressed) +
         ",\"findings\":[";
  for (size_t i = 0; i < merged.findings.size(); ++i) {
    const Finding& f = merged.findings[i];
    if (i > 0) out += ",";
    out += "{\"file\":\"" + JsonEscape(f.file) + "\",\"line\":" +
           std::to_string(f.line) + ",\"pass\":\"" + JsonEscape(f.pass) +
           "\",\"check\":\"" + JsonEscape(f.check) + "\",\"message\":\"" +
           JsonEscape(f.message) + "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace lint
}  // namespace unidetect
