#include "lint/determinism_lint.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdio>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

namespace unidetect {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kString };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

struct Lexed {
  std::vector<Tok> toks;
  // Lines on which findings are suppressed (NOLINT(determinism) on the
  // line itself or NOLINTNEXTLINE(determinism) on the line above).
  std::set<int> nolint_lines;
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Records NOLINT markers found inside a comment span.
void ScanCommentForNolint(std::string_view comment, int line, Lexed* out) {
  constexpr std::string_view kNext = "NOLINTNEXTLINE(determinism)";
  constexpr std::string_view kHere = "NOLINT(determinism)";
  int cur_line = line;
  for (size_t i = 0; i < comment.size(); ++i) {
    if (comment[i] == '\n') ++cur_line;
    if (comment.compare(i, kNext.size(), kNext) == 0) {
      out->nolint_lines.insert(cur_line + 1);
    } else if (comment.compare(i, kHere.size(), kHere) == 0) {
      out->nolint_lines.insert(cur_line);
    }
  }
}

Lexed Tokenize(std::string_view src) {
  Lexed out;
  static const std::array<std::string_view, 13> kTwoCharOps = {
      "<<", ">>", "+=", "-=", "->", "::", "==", "!=",
      "<=", ">=", "&&", "||", "++"};
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  const size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      ScanCommentForNolint(src.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      std::string_view body = src.substr(i, end - i);
      ScanCommentForNolint(body, line, &out);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = (end == n) ? n : end + 2;
      continue;
    }
    // String literal (with minimal raw-string support).
    if (c == '"') {
      bool raw = false;
      if (!out.toks.empty() && out.toks.back().kind == TokKind::kIdent) {
        const std::string& prev = out.toks.back().text;
        if (prev == "R" || prev == "u8R" || prev == "uR" || prev == "UR" ||
            prev == "LR") {
          raw = true;
          out.toks.pop_back();
        }
      }
      size_t start = i;
      if (raw) {
        size_t open = src.find('(', i);
        std::string delim =
            ")" + std::string(src.substr(i + 1, open - i - 1)) + "\"";
        size_t end = src.find(delim, open);
        if (end == std::string_view::npos) end = n;
        else end += delim.size();
        std::string_view body = src.substr(start, end - start);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        out.toks.push_back({TokKind::kString, "\"\"", line});
        i = end;
      } else {
        ++i;
        while (i < n && src[i] != '"') {
          if (src[i] == '\\' && i + 1 < n) ++i;
          ++i;
        }
        if (i < n) ++i;
        out.toks.push_back({TokKind::kString, "\"\"", line});
      }
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      out.toks.push_back({TokKind::kString, "''", line});
      continue;
    }
    // Number.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(src[i + 1]))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.toks.push_back(
          {TokKind::kNumber, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.toks.push_back(
          {TokKind::kIdent, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Punctuation: longest-match two-char operators first.
    if (i + 1 < n) {
      std::string_view two = src.substr(i, 2);
      bool matched = false;
      for (std::string_view op : kTwoCharOps) {
        if (two == op) {
          out.toks.push_back({TokKind::kPunct, std::string(op), line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    out.toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Analysis helpers
// ---------------------------------------------------------------------------

bool TokIs(const std::vector<Tok>& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}

bool IsIdent(const std::vector<Tok>& t, size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

/// Skips a balanced template-argument list. `i` must index the `<`.
/// Returns the index just past the matching `>`, or `i` if this does not
/// look like a template argument list (statement end reached first).
size_t SkipAngles(const std::vector<Tok>& t, size_t i) {
  int depth = 0;
  const size_t limit = std::min(t.size(), i + 400);
  for (size_t j = i; j < limit; ++j) {
    const std::string& x = t[j].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return j + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (x == ";" || x == "{" || x == "}") {
      return i;  // comparison, not a template
    }
  }
  return i;
}

/// First template argument of the list opened at `i` (the `<`); empty if
/// none. Used for pointer-keyed container detection.
std::vector<const Tok*> FirstTemplateArg(const std::vector<Tok>& t, size_t i) {
  std::vector<const Tok*> arg;
  int angle = 0;
  int paren = 0;
  const size_t limit = std::min(t.size(), i + 400);
  for (size_t j = i; j < limit; ++j) {
    const std::string& x = t[j].text;
    if (x == "<") {
      if (++angle == 1) continue;
    } else if (x == ">" || x == ">>") {
      if (angle == 1) return arg;
      angle -= (x == ">>") ? 2 : 1;
      if (angle <= 0) return arg;
    } else if (x == "(") {
      ++paren;
    } else if (x == ")") {
      if (--paren < 0) return {};
    } else if (x == "," && angle == 1 && paren == 0) {
      return arg;
    } else if (x == ";" || x == "{" || x == "}") {
      return {};  // not a template argument list after all
    }
    if (angle >= 1) arg.push_back(&t[j]);
    if (arg.size() > 100) return arg;
  }
  return {};
}

const std::unordered_set<std::string>& SyncTypeAllowlist() {
  static const std::unordered_set<std::string> kAllow = {
      "mutex",  "shared_mutex",  "recursive_mutex", "timed_mutex",
      "Mutex",  "atomic",        "atomic_flag",     "atomic_bool",
      "atomic_int", "atomic_size_t", "once_flag",   "condition_variable",
      "condition_variable_any", "CondVar"};
  return kAllow;
}

struct Analyzer {
  const std::vector<Tok>& t;
  std::string file;
  Options options;
  std::vector<Finding>* findings;

  std::unordered_set<std::string> unordered_names;
  std::unordered_set<std::string> string_names;

  void Emit(int line, const char* check, std::string message) {
    findings->push_back({file, line, check, std::move(message)});
  }

  // -- declared-name collection ------------------------------------------

  void CollectDeclaredNames() {
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& name = t[i].text;
      const bool unordered =
          name == "unordered_map" || name == "unordered_set" ||
          name == "unordered_multimap" || name == "unordered_multiset";
      const bool stringish = name == "string";
      if (!unordered && !stringish) continue;
      size_t j = i + 1;
      if (TokIs(t, j, "<")) {
        size_t after = SkipAngles(t, j);
        if (after == j) continue;
        j = after;
      } else if (unordered) {
        // unordered_map without template args: using-alias etc.; skip.
        continue;
      }
      while (TokIs(t, j, "&") || TokIs(t, j, "*") || TokIs(t, j, "const")) {
        ++j;
      }
      if (IsIdent(t, j)) {
        if (unordered) {
          unordered_names.insert(t[j].text);
        } else {
          string_names.insert(t[j].text);
        }
      }
    }
  }

  // -- check: unordered-iteration ----------------------------------------

  bool RangeOverUnordered(size_t open_paren, size_t close_paren) {
    // Range-for: single ':' at paren depth 1; otherwise look for
    // `<unordered>.begin` iterator loops.
    int depth = 0;
    size_t colon = 0;
    for (size_t j = open_paren; j <= close_paren; ++j) {
      const std::string& x = t[j].text;
      if (x == "(") ++depth;
      else if (x == ")") --depth;
      else if (x == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon != 0) {
      for (size_t j = colon + 1; j < close_paren; ++j) {
        if (IsIdent(t, j) && (unordered_names.count(t[j].text) ||
                              t[j].text == "unordered_map" ||
                              t[j].text == "unordered_set")) {
          return true;
        }
      }
      return false;
    }
    for (size_t j = open_paren; j + 2 < close_paren; ++j) {
      if (IsIdent(t, j) && unordered_names.count(t[j].text) &&
          (TokIs(t, j + 1, ".") || TokIs(t, j + 1, "->")) &&
          (TokIs(t, j + 2, "begin") || TokIs(t, j + 2, "cbegin"))) {
        return true;
      }
    }
    return false;
  }

  bool BodyAppends(size_t body_begin, size_t body_end) {
    for (size_t j = body_begin; j < body_end; ++j) {
      const std::string& x = t[j].text;
      if ((x == "push_back" || x == "emplace_back") && j > 0 &&
          (t[j - 1].text == "." || t[j - 1].text == "->")) {
        return true;
      }
      if (x == "<<") return true;
      if (x == "+=" && j > 0 && IsIdent(t, j - 1) &&
          string_names.count(t[j - 1].text)) {
        return true;
      }
    }
    return false;
  }

  bool SortFollows(size_t from) {
    int depth = 0;
    for (size_t j = from; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "{") {
        ++depth;
      } else if (x == "}") {
        if (depth == 0) return false;  // enclosing block closed, no sort
        --depth;
      } else if (t[j].kind == TokKind::kIdent &&
                 (x == "sort" || x == "stable_sort" ||
                  x.find("Sort") != std::string::npos)) {
        return true;
      }
    }
    return false;
  }

  void CheckUnorderedIteration() {
    for (size_t i = 0; i < t.size(); ++i) {
      if (!(IsIdent(t, i) && t[i].text == "for")) continue;
      if (!TokIs(t, i + 1, "(")) continue;
      // Find matching close paren.
      int depth = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        else if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close == 0) continue;
      if (!RangeOverUnordered(i + 1, close)) continue;
      // Loop body: braced block or single statement.
      size_t body_begin = close + 1;
      size_t body_end = body_begin;
      if (TokIs(t, body_begin, "{")) {
        int b = 0;
        for (size_t j = body_begin; j < t.size(); ++j) {
          if (t[j].text == "{") ++b;
          else if (t[j].text == "}" && --b == 0) {
            body_end = j;
            break;
          }
        }
      } else {
        while (body_end < t.size() && t[body_end].text != ";") ++body_end;
      }
      if (!BodyAppends(body_begin, body_end)) continue;
      if (SortFollows(body_end + 1)) continue;
      Emit(t[i].line, "unordered-iteration",
           "loop over unordered container appends to ordered output with "
           "no subsequent sort in the enclosing block; hash order leaks "
           "into results");
    }
  }

  // -- check: banned-source / pointer-key --------------------------------

  void CheckBannedSources() {
    static const std::unordered_set<std::string> kBannedAlways = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "random_shuffle"};
    static const std::unordered_set<std::string> kBannedOutsideRandom = {
        "random_device", "mt19937", "mt19937_64", "default_random_engine",
        "minstd_rand", "ranlux24", "ranlux48", "knuth_b"};
    static const std::unordered_set<std::string> kKeyedContainers = {
        "map", "set", "multimap", "multiset", "unordered_map",
        "unordered_set", "hash", "less", "greater"};
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& name = t[i].text;
      const bool member_access =
          i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      if (!member_access && kBannedAlways.count(name)) {
        Emit(t[i].line, "banned-source",
             "'" + name + "' is nondeterministic across runs; use " +
                 "unidetect::Rng (src/util/random.h) instead");
        continue;
      }
      if (!member_access && !options.allow_random_primitives &&
          kBannedOutsideRandom.count(name)) {
        Emit(t[i].line, "banned-source",
             "'" + name + "' outside src/util/random.*; all randomness "
                 "must flow through unidetect::Rng");
        continue;
      }
      if (name == "time" && TokIs(t, i + 1, "(") &&
          (TokIs(t, i + 2, "nullptr") || TokIs(t, i + 2, "NULL") ||
           TokIs(t, i + 2, "0")) &&
          TokIs(t, i + 3, ")")) {
        Emit(t[i].line, "banned-source",
             "wall-clock seed 'time(...)' is nondeterministic; thread a "
             "fixed seed through unidetect::Rng");
        continue;
      }
      if (kKeyedContainers.count(name) && TokIs(t, i + 1, "<")) {
        auto arg = FirstTemplateArg(t, i + 1);
        bool has_pointer = false;
        for (const Tok* tok : arg) {
          if (tok->text == "*") has_pointer = true;
        }
        if (has_pointer) {
          Emit(t[i].line, "pointer-key",
               "'" + name + "' keyed on a pointer: iteration/compare order "
                   "follows allocation addresses, which differ run to run");
        }
      }
    }
  }

  // -- check: mutable-global / mutable-static ----------------------------

  enum class Scope { kNamespace, kClass, kFunction };

  static bool HeadHasAny(const std::vector<const Tok*>& head,
                         const std::unordered_set<std::string>& names) {
    for (const Tok* tok : head) {
      if (names.count(tok->text)) return true;
    }
    return false;
  }

  /// Statement head: tokens from `stmt_start` to `stmt_end` with
  /// template-argument lists collapsed (so a '(' inside <...> does not
  /// read as a function signature).
  std::vector<const Tok*> StatementHead(size_t stmt_start, size_t stmt_end) {
    std::vector<const Tok*> head;
    for (size_t j = stmt_start; j < stmt_end; ++j) {
      if (t[j].text == "<" && j > stmt_start && IsIdent(t, j - 1)) {
        size_t after = SkipAngles(t, j);
        if (after != j) {
          j = after - 1;
          continue;
        }
      }
      head.push_back(&t[j]);
    }
    return head;
  }

  /// Scope kind opened by a brace whose statement head is `head`:
  /// `namespace`/class-key introducers win; anything else (function
  /// bodies, control blocks, lambdas, initializer lists) is treated as
  /// function scope, where only `static` declarations are examined.
  static Scope ClassifyBrace(const std::vector<const Tok*>& head) {
    for (const Tok* tok : head) {
      if (tok->text == "namespace") return Scope::kNamespace;
      if (tok->text == "class" || tok->text == "struct" ||
          tok->text == "union" || tok->text == "enum") {
        return Scope::kClass;
      }
      if (tok->text == ")" || tok->text == "=") break;
    }
    return Scope::kFunction;
  }

  void CheckMutableState() {
    // Declaration checks fire once per statement, at its first '{' or
    // ';' — whichever comes first owns the evaluation.
    std::vector<Scope> scopes;  // implicit file scope = namespace
    size_t stmt_start = 0;
    bool evaluated = false;
    auto current = [&]() {
      return scopes.empty() ? Scope::kNamespace : scopes.back();
    };
    for (size_t i = 0; i < t.size(); ++i) {
      const std::string& x = t[i].text;
      if (x == ";") {
        if (!evaluated) {
          EvaluateHead(StatementHead(stmt_start, i), current());
        }
        stmt_start = i + 1;
        evaluated = false;
        continue;
      }
      if (x == "}") {
        if (!scopes.empty()) scopes.pop_back();
        stmt_start = i + 1;
        evaluated = false;
        continue;
      }
      if (x == ":" && i > 0 &&
          (t[i - 1].text == "public" || t[i - 1].text == "private" ||
           t[i - 1].text == "protected")) {
        stmt_start = i + 1;
        evaluated = false;
        continue;
      }
      if (x != "{") continue;
      std::vector<const Tok*> head = StatementHead(stmt_start, i);
      if (!evaluated) {
        EvaluateHead(head, current());
        evaluated = true;
      }
      scopes.push_back(ClassifyBrace(head));
      stmt_start = i + 1;
      evaluated = false;
    }
  }

  void EvaluateHead(const std::vector<const Tok*>& head, Scope scope) {
    if (head.empty()) return;
    static const std::unordered_set<std::string> kConstish = {
        "const", "constexpr", "consteval", "constinit"};
    static const std::unordered_set<std::string> kNamespaceSkip = {
        "namespace", "using",  "typedef",       "template", "class",
        "struct",    "union",  "enum",          "extern",   "friend",
        "static_assert", "operator", "return",  "if",       "for",
        "while",     "switch", "do",            "goto",     "case",
        "default",   "delete", "throw"};
    const bool is_static = head.front()->text == "static";
    if (scope != Scope::kNamespace && !is_static) return;
    if (kNamespaceSkip.count(head.front()->text)) return;
    // Const, synchronization types, and thread_local pins are fine.
    if (HeadHasAny(head, kConstish)) return;
    if (HeadHasAny(head, SyncTypeAllowlist())) return;
    // Anything with parens before an initializer reads as a function
    // declaration/definition (or an annotated, intentionally-shared
    // variable via GUARDED_BY(...)); skip.
    for (const Tok* tok : head) {
      if (tok->text == "=") break;
      if (tok->text == "(") return;
      if (tok->text == "operator") return;
    }
    // Plain expression statements (assignments, calls) are not
    // declarations; a declaration head needs at least two identifiers
    // (type + name) before any '='.
    int idents_before_init = 0;
    for (const Tok* tok : head) {
      if (tok->text == "=") break;
      if (tok->kind == TokKind::kIdent && !kConstish.count(tok->text) &&
          tok->text != "static" && tok->text != "inline" &&
          tok->text != "std" && tok->text != "thread_local" &&
          tok->text != "unsigned" && tok->text != "signed") {
        ++idents_before_init;
      }
    }
    if (idents_before_init < 2) return;
    const Tok* anchor = head.front();
    if (is_static && scope != Scope::kNamespace) {
      Emit(anchor->line, "mutable-static",
           "mutable function-local 'static' is cross-call shared state; "
           "make it const, move it to an owner object, or NOLINT with a "
           "justification");
    } else {
      Emit(anchor->line, "mutable-global",
           "mutable namespace-scope variable is shared global state; make "
           "it const, wrap it behind a synchronized accessor, or NOLINT "
           "with a justification");
    }
  }
};

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Options OptionsForPath(std::string_view path) {
  Options options;
  if (path.find("util/random.") != std::string_view::npos) {
    options.allow_random_primitives = true;
  }
  return options;
}

LintResult LintSource(std::string_view path, std::string_view source,
                      const Options& options) {
  Lexed lexed = Tokenize(source);
  std::vector<Finding> raw;
  Analyzer analyzer{lexed.toks, std::string(path), options, &raw, {}, {}};
  analyzer.CollectDeclaredNames();
  analyzer.CheckUnorderedIteration();
  analyzer.CheckBannedSources();
  analyzer.CheckMutableState();

  LintResult result;
  for (auto& finding : raw) {
    if (lexed.nolint_lines.count(finding.line)) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(finding));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return result;
}

LintResult LintSource(std::string_view path, std::string_view source) {
  return LintSource(path, source, OptionsForPath(path));
}

std::string ReportJson(size_t files_scanned, const LintResult& merged) {
  std::string out = "{\"files_scanned\":" + std::to_string(files_scanned) +
                    ",\"suppressed\":" + std::to_string(merged.suppressed) +
                    ",\"findings\":[";
  for (size_t i = 0; i < merged.findings.size(); ++i) {
    const Finding& f = merged.findings[i];
    if (i > 0) out += ",";
    out += "{\"file\":\"" + JsonEscape(f.file) + "\",\"line\":" +
           std::to_string(f.line) + ",\"check\":\"" + JsonEscape(f.check) +
           "\",\"message\":\"" + JsonEscape(f.message) + "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace lint
}  // namespace unidetect
