// Driver for the unidetect multi-pass linter.
//
// Usage: unidetect_lint [--passes=a,b] [--json REPORT] PATH...
//   PATH       a .cc/.h file or a directory walked recursively
//   --passes   comma-separated pass names to run (default: all).
//              `--passes=determinism` reproduces the original
//              determinism_lint behavior.
//   --json     also write the machine-readable report to REPORT
//
// Exit code: 0 when clean, 1 when findings remain after NOLINT
// suppression, 2 on usage or I/O errors.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool IsCppSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp" ||
         ext == ".cxx";
}

bool CollectFiles(const std::string& arg, std::vector<std::string>* files) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (const auto& entry :
         fs::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file() && IsCppSource(entry.path())) {
        files->push_back(entry.path().string());
      }
    }
    return !ec;
  }
  if (fs::is_regular_file(arg, ec)) {
    files->push_back(arg);
    return true;
  }
  std::cerr << "unidetect_lint: no such file or directory: " << arg << "\n";
  return false;
}

bool ParsePassList(const std::string& spec, std::vector<std::string>* passes) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(start, comma - start);
    if (!name.empty()) {
      if (!unidetect::lint::IsPassName(name)) {
        std::cerr << "unidetect_lint: unknown pass '" << name
                  << "'; known passes:";
        for (const std::string& known : unidetect::lint::PassNames()) {
          std::cerr << " " << known;
        }
        std::cerr << "\n";
        return false;
      }
      passes->push_back(name);
    }
    start = comma + 1;
  }
  if (passes->empty()) {
    std::cerr << "unidetect_lint: --passes needs at least one pass name\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> passes;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "unidetect_lint: --json needs a path\n";
        return 2;
      }
      json_path = argv[++i];
    } else if (arg.rfind("--passes=", 0) == 0) {
      if (!ParsePassList(arg.substr(9), &passes)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: unidetect_lint [--passes=a,b] [--json REPORT] "
                   "PATH...\n";
      return 0;
    } else {
      if (!CollectFiles(arg, &files)) return 2;
    }
  }
  if (files.empty()) {
    std::cerr << "usage: unidetect_lint [--passes=a,b] [--json REPORT] "
                 "PATH...\n";
    return 2;
  }
  std::sort(files.begin(), files.end());

  unidetect::lint::LintResult merged;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "unidetect_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto result = unidetect::lint::LintSource(
        file, buffer.str(), passes, unidetect::lint::OptionsForPath(file));
    merged.suppressed += result.suppressed;
    for (auto& finding : result.findings) {
      merged.findings.push_back(std::move(finding));
    }
  }

  for (const auto& f : merged.findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.pass << "/" << f.check
              << "] " << f.message << "\n";
  }
  const std::string report =
      unidetect::lint::ReportJson(files.size(), passes, merged);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "unidetect_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << report;
  }
  std::cerr << "unidetect_lint: " << files.size() << " files, "
            << merged.findings.size() << " findings, " << merged.suppressed
            << " suppressed\n";
  return merged.findings.empty() ? 0 : 1;
}
