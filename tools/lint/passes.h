// Internal pass interface of the lint library. Each pass is a free
// function over the shared token stream; lint.cc owns the registry that
// maps pass names to these functions and applies NOLINT suppression to
// whatever they emit (passes emit unconditionally).

#pragma once

#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace unidetect {
namespace lint {

struct PassContext {
  std::string file;
  Options options;
};

// Pass names are the NOLINT keys; keep them in sync with lint.cc's
// registry and the documentation in lint.h.
inline constexpr const char* kDeterminismPass = "determinism";
inline constexpr const char* kUnsafeBytesPass = "unsafe-bytes";
inline constexpr const char* kCheckedArithmeticPass = "checked-arithmetic";

void RunDeterminismPass(const Lexed& lexed, const PassContext& context,
                        std::vector<Finding>* findings);
void RunUnsafeBytesPass(const Lexed& lexed, const PassContext& context,
                        std::vector<Finding>* findings);
void RunCheckedArithmeticPass(const Lexed& lexed, const PassContext& context,
                              std::vector<Finding>* findings);

}  // namespace lint
}  // namespace unidetect
