// The checked-arithmetic pass: a scoped, file-local taint analysis over
// integers read off the wire. A length, offset or count decoded from
// untrusted bytes can be crafted so that `offset + length` wraps or
// `count * sizeof(T)` overflows, defeating a later bounds compare; the
// project rule is that such values flow through CheckedAdd / CheckedMul
// / CheckedCast (util/checked.h), which contain no raw operator tokens
// and therefore pass this lint with no special-casing.
//
// Taint sources (token patterns, matched in one forward scan):
//   Read*(&name)                         cursor reads into an out-param:
//                                        ReadU32(&count), ReadU64(&off);
//                                        member chains taint the final
//                                        name (&out->count taints count).
//   UNIDETECT_ASSIGN_OR_RETURN(T name,   Result-typed reads: when the
//       <expr containing Read*>)         expression mentions a Read*
//                                        call, the declared name is
//                                        tainted.
//
// Propagation: `lhs = tainted ;` taints lhs (simple assignment only —
// this is a lexical heuristic, not dataflow).
//
// Scoping: taint dies with its brace scope. A name tainted inside one
// function does not poison an unrelated function (or an earlier helper)
// that reuses the identifier; C++'s declare-before-use order makes a
// single forward scan sufficient.
//
// Checks on tainted identifiers:
//   unchecked-add        tainted operand of binary `+` or `+=`.
//   unchecked-mul        tainted operand of binary `*` or `*=` (the `*`
//                        disambiguated from deref/pointer-decl by its
//                        neighbors).
//   narrowing-cast       static_cast<narrow>(tainted) where narrow is a
//                        type that can truncate a u64 length: size_t,
//                        uint32_t, int, unsigned, ptrdiff_t, ...
//
// Comparisons, subtraction and division are deliberately unflagged:
// `a > limit`, `remaining() / kEntryBytes` are how bounds checks are
// written, and they cannot wrap upward.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lint/lexer.h"
#include "lint/passes.h"

namespace unidetect {
namespace lint {

namespace {

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

// Types through which a u64 wire length silently truncates.
bool IsNarrowType(const std::string& name) {
  static const std::unordered_set<std::string> kNarrow = {
      "size_t",   "uint32_t", "uint16_t", "uint8_t", "int32_t", "int16_t",
      "int8_t",   "int",      "unsigned", "short",   "char",    "long",
      "ptrdiff_t", "ssize_t"};
  return kNarrow.count(name) > 0;
}

struct TaintAnalyzer {
  const std::vector<Tok>& t;
  const PassContext& context;
  std::vector<Finding>* findings;

  // name -> brace depth at which the taint was introduced. Entries are
  // dropped when the scan leaves that depth.
  std::unordered_map<std::string, int> tainted;
  int depth = 0;

  void Emit(int line, const char* check, std::string message) {
    findings->push_back({context.file, line, kCheckedArithmeticPass, check,
                         std::move(message)});
  }

  bool Tainted(size_t i) const {
    return IsIdent(t, i) && tainted.count(t[i].text) > 0;
  }

  void Taint(const std::string& name) {
    // Re-tainting at an outer depth widens the lifetime; keep the
    // shallower depth.
    auto [it, inserted] = tainted.emplace(name, depth);
    if (!inserted && depth < it->second) it->second = depth;
  }

  void LeaveScope() {
    for (auto it = tainted.begin(); it != tainted.end();) {
      if (it->second > depth) {
        it = tainted.erase(it);
      } else {
        ++it;
      }
    }
  }

  // -- taint sources -----------------------------------------------------

  /// Handles `Read*( ... &name ... )`: taints every `&`-passed
  /// identifier, following member chains to their final component. The
  /// `&` must sit in argument position (after `(` or `,`) so that
  /// reference *parameters* in a `ReadFoo(const T& x)` declaration are
  /// not mistaken for out-params.
  void TaintReadOutParams(size_t call_open) {
    int paren = 0;
    for (size_t j = call_open; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(") ++paren;
      else if (x == ")") {
        if (--paren == 0) return;
      } else if (x == ";" || x == "{") {
        return;
      } else if (x == "&" && IsIdent(t, j + 1) && j > 0 &&
                 (t[j - 1].text == "(" || t[j - 1].text == ",")) {
        size_t k = j + 1;
        while ((TokIs(t, k + 1, ".") || TokIs(t, k + 1, "->")) &&
               IsIdent(t, k + 2)) {
          k += 2;
        }
        Taint(t[k].text);
      }
    }
  }

  /// Handles `UNIDETECT_ASSIGN_OR_RETURN(decl..., expr)`: when the
  /// expression mentions an identifier starting with "Read", the
  /// declared name (last identifier before the first top-level comma)
  /// is tainted.
  void TaintAssignOrReturn(size_t macro_ident) {
    if (!TokIs(t, macro_ident + 1, "(")) return;
    int paren = 0;
    size_t comma = 0;
    size_t close = 0;
    for (size_t j = macro_ident + 1; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(") ++paren;
      else if (x == ")") {
        if (--paren == 0) {
          close = j;
          break;
        }
      } else if (x == "," && paren == 1 && comma == 0) {
        comma = j;
      }
    }
    if (comma == 0 || close == 0) return;
    bool reads_wire = false;
    for (size_t j = comma + 1; j < close; ++j) {
      if (IsIdent(t, j) && StartsWith(t[j].text, "Read")) {
        reads_wire = true;
        break;
      }
    }
    if (reads_wire && IsIdent(t, comma - 1)) Taint(t[comma - 1].text);
  }

  // -- operand classification --------------------------------------------

  /// True when the `*` at `i` is a binary multiply rather than a
  /// dereference or pointer declarator: both neighbors look like value
  /// operands.
  bool IsBinaryMul(size_t i) const {
    if (i == 0 || i + 1 >= t.size()) return false;
    const Tok& prev = t[i - 1];
    const Tok& next = t[i + 1];
    const bool prev_value = prev.kind == TokKind::kIdent ||
                            prev.kind == TokKind::kNumber ||
                            prev.text == ")" || prev.text == "]";
    const bool next_value = next.kind == TokKind::kIdent ||
                            next.kind == TokKind::kNumber ||
                            next.text == "(";
    return prev_value && next_value;
  }

  /// True when the `+` at `i` is a binary add (not unary sign; `++` is
  /// already folded by the lexer).
  bool IsBinaryAdd(size_t i) const {
    if (i == 0 || i + 1 >= t.size()) return false;
    const Tok& prev = t[i - 1];
    return prev.kind == TokKind::kIdent || prev.kind == TokKind::kNumber ||
           prev.text == ")" || prev.text == "]";
  }

  // -- the scan ----------------------------------------------------------

  void Run() {
    for (size_t i = 0; i < t.size(); ++i) {
      const std::string& x = t[i].text;
      if (x == "{") {
        ++depth;
        continue;
      }
      if (x == "}") {
        if (depth > 0) --depth;
        LeaveScope();
        continue;
      }
      if (t[i].kind == TokKind::kIdent) {
        if (StartsWith(x, "Read") && TokIs(t, i + 1, "(")) {
          TaintReadOutParams(i + 1);
        } else if (x == "UNIDETECT_ASSIGN_OR_RETURN") {
          TaintAssignOrReturn(i);
        } else if (x == "static_cast" && TokIs(t, i + 1, "<")) {
          CheckNarrowingCast(i);
        }
        // Propagation: `lhs = tainted` (simple assignment, same
        // statement).
        if (TokIs(t, i + 1, "=") && IsIdent(t, i + 2) &&
            tainted.count(t[i + 2].text) &&
            (TokIs(t, i + 3, ";") || TokIs(t, i + 3, ",") ||
             TokIs(t, i + 3, ")"))) {
          Taint(x);
        }
        continue;
      }
      if (x == "+" && IsBinaryAdd(i) && (Tainted(i - 1) || Tainted(i + 1))) {
        const std::string& name =
            Tainted(i - 1) ? t[i - 1].text : t[i + 1].text;
        Emit(t[i].line, "unchecked-add",
             "unchecked '+' on wire-derived '" + name + "'; a crafted "
             "value can wrap the sum past a later bounds compare — use "
             "CheckedAdd (util/checked.h)");
      } else if (x == "+=" && (Tainted(i - 1) || Tainted(i + 1))) {
        const std::string& name =
            Tainted(i - 1) ? t[i - 1].text : t[i + 1].text;
        Emit(t[i].line, "unchecked-add",
             "unchecked '+=' involving wire-derived '" + name +
                 "'; use CheckedAdd (util/checked.h)");
      } else if (x == "*" && IsBinaryMul(i) &&
                 (Tainted(i - 1) || Tainted(i + 1))) {
        const std::string& name =
            Tainted(i - 1) ? t[i - 1].text : t[i + 1].text;
        Emit(t[i].line, "unchecked-mul",
             "unchecked '*' on wire-derived '" + name + "'; count-times-"
             "element-size products overflow on crafted counts — use "
             "CheckedMul (util/checked.h)");
      } else if (x == "*=" && (Tainted(i - 1) || Tainted(i + 1))) {
        const std::string& name =
            Tainted(i - 1) ? t[i - 1].text : t[i + 1].text;
        Emit(t[i].line, "unchecked-mul",
             "unchecked '*=' involving wire-derived '" + name +
                 "'; use CheckedMul (util/checked.h)");
      }
    }
  }

  void CheckNarrowingCast(size_t i) {
    size_t after = SkipAngles(t, i + 1);
    if (after == i + 1) return;
    bool narrow = false;
    for (size_t j = i + 2; j + 1 < after; ++j) {
      if (IsIdent(t, j) && IsNarrowType(t[j].text)) narrow = true;
    }
    if (!narrow) return;
    // static_cast<T>(ident): flag when ident is tainted. Casts of
    // expressions are covered by the arithmetic checks on the
    // expression itself.
    if (TokIs(t, after, "(") && Tainted(after + 1) &&
        TokIs(t, after + 2, ")")) {
      Emit(t[i].line, "narrowing-cast",
           "narrowing static_cast of wire-derived '" + t[after + 1].text +
               "'; truncation forges a small in-bounds value from a "
               "huge one — use CheckedCast (util/checked.h)");
    }
  }
};

}  // namespace

void RunCheckedArithmeticPass(const Lexed& lexed, const PassContext& context,
                              std::vector<Finding>* findings) {
  if (context.options.trusted_cursor_module) return;
  TaintAnalyzer analyzer{lexed.toks, context, findings, {}, 0};
  analyzer.Run();
}

}  // namespace lint
}  // namespace unidetect
