// The determinism pass: the nondeterminism bug classes that break
// Uni-Detect's byte-identical ranking contract (DESIGN.md section 9).
//
// Checks:
//   unordered-iteration  iteration over an unordered container whose
//                        body appends to a string/stream/vector, with no
//                        subsequent sort in the enclosing block.
//   banned-source        std::rand/srand/time(nullptr)/... and the
//                        <random> engines outside src/util/random.*.
//   pointer-key          ordering or hashing keyed on pointer values
//                        (map<T*, ...>, set<T*>, hash<T*>, less<T*>).
//   mutable-global       non-const namespace-scope variables and
//   mutable-static       `static` locals, unless const/constexpr, a
//                        synchronization type, or NOLINT'ed.

#include <string>
#include <unordered_set>
#include <vector>

#include "lint/lexer.h"
#include "lint/passes.h"

namespace unidetect {
namespace lint {

namespace {

const std::unordered_set<std::string>& SyncTypeAllowlist() {
  static const std::unordered_set<std::string> kAllow = {
      "mutex",  "shared_mutex",  "recursive_mutex", "timed_mutex",
      "Mutex",  "atomic",        "atomic_flag",     "atomic_bool",
      "atomic_int", "atomic_size_t", "once_flag",   "condition_variable",
      "condition_variable_any", "CondVar"};
  return kAllow;
}

struct Analyzer {
  const std::vector<Tok>& t;
  std::string file;
  Options options;
  std::vector<Finding>* findings;

  std::unordered_set<std::string> unordered_names;
  std::unordered_set<std::string> string_names;

  void Emit(int line, const char* check, std::string message) {
    findings->push_back(
        {file, line, kDeterminismPass, check, std::move(message)});
  }

  // -- declared-name collection ------------------------------------------

  void CollectDeclaredNames() {
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& name = t[i].text;
      const bool unordered =
          name == "unordered_map" || name == "unordered_set" ||
          name == "unordered_multimap" || name == "unordered_multiset";
      const bool stringish = name == "string";
      if (!unordered && !stringish) continue;
      size_t j = i + 1;
      if (TokIs(t, j, "<")) {
        size_t after = SkipAngles(t, j);
        if (after == j) continue;
        j = after;
      } else if (unordered) {
        // unordered_map without template args: using-alias etc.; skip.
        continue;
      }
      while (TokIs(t, j, "&") || TokIs(t, j, "*") || TokIs(t, j, "const")) {
        ++j;
      }
      if (IsIdent(t, j)) {
        if (unordered) {
          unordered_names.insert(t[j].text);
        } else {
          string_names.insert(t[j].text);
        }
      }
    }
  }

  // -- check: unordered-iteration ----------------------------------------

  bool RangeOverUnordered(size_t open_paren, size_t close_paren) {
    // Range-for: single ':' at paren depth 1; otherwise look for
    // `<unordered>.begin` iterator loops.
    int depth = 0;
    size_t colon = 0;
    for (size_t j = open_paren; j <= close_paren; ++j) {
      const std::string& x = t[j].text;
      if (x == "(") ++depth;
      else if (x == ")") --depth;
      else if (x == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon != 0) {
      for (size_t j = colon + 1; j < close_paren; ++j) {
        if (IsIdent(t, j) && (unordered_names.count(t[j].text) ||
                              t[j].text == "unordered_map" ||
                              t[j].text == "unordered_set")) {
          return true;
        }
      }
      return false;
    }
    for (size_t j = open_paren; j + 2 < close_paren; ++j) {
      if (IsIdent(t, j) && unordered_names.count(t[j].text) &&
          (TokIs(t, j + 1, ".") || TokIs(t, j + 1, "->")) &&
          (TokIs(t, j + 2, "begin") || TokIs(t, j + 2, "cbegin"))) {
        return true;
      }
    }
    return false;
  }

  bool BodyAppends(size_t body_begin, size_t body_end) {
    for (size_t j = body_begin; j < body_end; ++j) {
      const std::string& x = t[j].text;
      if ((x == "push_back" || x == "emplace_back") && j > 0 &&
          (t[j - 1].text == "." || t[j - 1].text == "->")) {
        return true;
      }
      if (x == "<<") return true;
      if (x == "+=" && j > 0 && IsIdent(t, j - 1) &&
          string_names.count(t[j - 1].text)) {
        return true;
      }
    }
    return false;
  }

  bool SortFollows(size_t from) {
    int depth = 0;
    for (size_t j = from; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "{") {
        ++depth;
      } else if (x == "}") {
        if (depth == 0) return false;  // enclosing block closed, no sort
        --depth;
      } else if (t[j].kind == TokKind::kIdent &&
                 (x == "sort" || x == "stable_sort" ||
                  x.find("Sort") != std::string::npos)) {
        return true;
      }
    }
    return false;
  }

  void CheckUnorderedIteration() {
    for (size_t i = 0; i < t.size(); ++i) {
      if (!(IsIdent(t, i) && t[i].text == "for")) continue;
      if (!TokIs(t, i + 1, "(")) continue;
      // Find matching close paren.
      int depth = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        else if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close == 0) continue;
      if (!RangeOverUnordered(i + 1, close)) continue;
      // Loop body: braced block or single statement.
      size_t body_begin = close + 1;
      size_t body_end = body_begin;
      if (TokIs(t, body_begin, "{")) {
        int b = 0;
        for (size_t j = body_begin; j < t.size(); ++j) {
          if (t[j].text == "{") ++b;
          else if (t[j].text == "}" && --b == 0) {
            body_end = j;
            break;
          }
        }
      } else {
        while (body_end < t.size() && t[body_end].text != ";") ++body_end;
      }
      if (!BodyAppends(body_begin, body_end)) continue;
      if (SortFollows(body_end + 1)) continue;
      Emit(t[i].line, "unordered-iteration",
           "loop over unordered container appends to ordered output with "
           "no subsequent sort in the enclosing block; hash order leaks "
           "into results");
    }
  }

  // -- check: banned-source / pointer-key --------------------------------

  void CheckBannedSources() {
    static const std::unordered_set<std::string> kBannedAlways = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "random_shuffle"};
    static const std::unordered_set<std::string> kBannedOutsideRandom = {
        "random_device", "mt19937", "mt19937_64", "default_random_engine",
        "minstd_rand", "ranlux24", "ranlux48", "knuth_b"};
    static const std::unordered_set<std::string> kKeyedContainers = {
        "map", "set", "multimap", "multiset", "unordered_map",
        "unordered_set", "hash", "less", "greater"};
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& name = t[i].text;
      const bool member_access =
          i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      if (!member_access && kBannedAlways.count(name)) {
        Emit(t[i].line, "banned-source",
             "'" + name + "' is nondeterministic across runs; use " +
                 "unidetect::Rng (src/util/random.h) instead");
        continue;
      }
      if (!member_access && !options.allow_random_primitives &&
          kBannedOutsideRandom.count(name)) {
        Emit(t[i].line, "banned-source",
             "'" + name + "' outside src/util/random.*; all randomness "
                 "must flow through unidetect::Rng");
        continue;
      }
      if (name == "time" && TokIs(t, i + 1, "(") &&
          (TokIs(t, i + 2, "nullptr") || TokIs(t, i + 2, "NULL") ||
           TokIs(t, i + 2, "0")) &&
          TokIs(t, i + 3, ")")) {
        Emit(t[i].line, "banned-source",
             "wall-clock seed 'time(...)' is nondeterministic; thread a "
             "fixed seed through unidetect::Rng");
        continue;
      }
      if (kKeyedContainers.count(name) && TokIs(t, i + 1, "<")) {
        auto arg = FirstTemplateArg(t, i + 1);
        bool has_pointer = false;
        for (const Tok* tok : arg) {
          if (tok->text == "*") has_pointer = true;
        }
        if (has_pointer) {
          Emit(t[i].line, "pointer-key",
               "'" + name + "' keyed on a pointer: iteration/compare order "
                   "follows allocation addresses, which differ run to run");
        }
      }
    }
  }

  // -- check: mutable-global / mutable-static ----------------------------

  enum class Scope { kNamespace, kClass, kFunction };

  static bool HeadHasAny(const std::vector<const Tok*>& head,
                         const std::unordered_set<std::string>& names) {
    for (const Tok* tok : head) {
      if (names.count(tok->text)) return true;
    }
    return false;
  }

  /// Statement head: tokens from `stmt_start` to `stmt_end` with
  /// template-argument lists collapsed (so a '(' inside <...> does not
  /// read as a function signature).
  std::vector<const Tok*> StatementHead(size_t stmt_start, size_t stmt_end) {
    std::vector<const Tok*> head;
    for (size_t j = stmt_start; j < stmt_end; ++j) {
      if (t[j].text == "<" && j > stmt_start && IsIdent(t, j - 1)) {
        size_t after = SkipAngles(t, j);
        if (after != j) {
          j = after - 1;
          continue;
        }
      }
      head.push_back(&t[j]);
    }
    return head;
  }

  /// Scope kind opened by a brace whose statement head is `head`:
  /// `namespace`/class-key introducers win; anything else (function
  /// bodies, control blocks, lambdas, initializer lists) is treated as
  /// function scope, where only `static` declarations are examined.
  static Scope ClassifyBrace(const std::vector<const Tok*>& head) {
    for (const Tok* tok : head) {
      if (tok->text == "namespace") return Scope::kNamespace;
      if (tok->text == "class" || tok->text == "struct" ||
          tok->text == "union" || tok->text == "enum") {
        return Scope::kClass;
      }
      if (tok->text == ")" || tok->text == "=") break;
    }
    return Scope::kFunction;
  }

  void CheckMutableState() {
    // Declaration checks fire once per statement, at its first '{' or
    // ';' — whichever comes first owns the evaluation.
    std::vector<Scope> scopes;  // implicit file scope = namespace
    size_t stmt_start = 0;
    bool evaluated = false;
    auto current = [&]() {
      return scopes.empty() ? Scope::kNamespace : scopes.back();
    };
    for (size_t i = 0; i < t.size(); ++i) {
      const std::string& x = t[i].text;
      if (x == ";") {
        if (!evaluated) {
          EvaluateHead(StatementHead(stmt_start, i), current());
        }
        stmt_start = i + 1;
        evaluated = false;
        continue;
      }
      if (x == "}") {
        if (!scopes.empty()) scopes.pop_back();
        stmt_start = i + 1;
        evaluated = false;
        continue;
      }
      if (x == ":" && i > 0 &&
          (t[i - 1].text == "public" || t[i - 1].text == "private" ||
           t[i - 1].text == "protected")) {
        stmt_start = i + 1;
        evaluated = false;
        continue;
      }
      if (x != "{") continue;
      std::vector<const Tok*> head = StatementHead(stmt_start, i);
      if (!evaluated) {
        EvaluateHead(head, current());
        evaluated = true;
      }
      scopes.push_back(ClassifyBrace(head));
      stmt_start = i + 1;
      evaluated = false;
    }
  }

  void EvaluateHead(const std::vector<const Tok*>& head, Scope scope) {
    if (head.empty()) return;
    static const std::unordered_set<std::string> kConstish = {
        "const", "constexpr", "consteval", "constinit"};
    static const std::unordered_set<std::string> kNamespaceSkip = {
        "namespace", "using",  "typedef",       "template", "class",
        "struct",    "union",  "enum",          "extern",   "friend",
        "static_assert", "operator", "return",  "if",       "for",
        "while",     "switch", "do",            "goto",     "case",
        "default",   "delete", "throw"};
    const bool is_static = head.front()->text == "static";
    if (scope != Scope::kNamespace && !is_static) return;
    if (kNamespaceSkip.count(head.front()->text)) return;
    // Const, synchronization types, and thread_local pins are fine.
    if (HeadHasAny(head, kConstish)) return;
    if (HeadHasAny(head, SyncTypeAllowlist())) return;
    // Anything with parens before an initializer reads as a function
    // declaration/definition (or an annotated, intentionally-shared
    // variable via GUARDED_BY(...)); skip.
    for (const Tok* tok : head) {
      if (tok->text == "=") break;
      if (tok->text == "(") return;
      if (tok->text == "operator") return;
    }
    // Plain expression statements (assignments, calls) are not
    // declarations; a declaration head needs at least two identifiers
    // (type + name) before any '='.
    int idents_before_init = 0;
    for (const Tok* tok : head) {
      if (tok->text == "=") break;
      if (tok->kind == TokKind::kIdent && !kConstish.count(tok->text) &&
          tok->text != "static" && tok->text != "inline" &&
          tok->text != "std" && tok->text != "thread_local" &&
          tok->text != "unsigned" && tok->text != "signed") {
        ++idents_before_init;
      }
    }
    if (idents_before_init < 2) return;
    const Tok* anchor = head.front();
    if (is_static && scope != Scope::kNamespace) {
      Emit(anchor->line, "mutable-static",
           "mutable function-local 'static' is cross-call shared state; "
           "make it const, move it to an owner object, or NOLINT with a "
           "justification");
    } else {
      Emit(anchor->line, "mutable-global",
           "mutable namespace-scope variable is shared global state; make "
           "it const, wrap it behind a synchronized accessor, or NOLINT "
           "with a justification");
    }
  }
};

}  // namespace

void RunDeterminismPass(const Lexed& lexed, const PassContext& context,
                        std::vector<Finding>* findings) {
  Analyzer analyzer{lexed.toks, context.file, context.options, findings,
                    {},         {}};
  analyzer.CollectDeclaredNames();
  analyzer.CheckUnorderedIteration();
  analyzer.CheckBannedSources();
  analyzer.CheckMutableState();
}

}  // namespace lint
}  // namespace unidetect
