// Multi-pass static analyzer for the invariants the test suite cannot
// see (DESIGN.md sections 9 and 14). One shared tokenizer (lexer.h)
// feeds a registry of passes; each pass is a token-level pattern matcher
// that enforces one project invariant:
//
//   determinism          the byte-identical-ranking contract: iteration
//                        over unordered containers that appends to
//                        ordered output, banned randomness sources,
//                        pointer-keyed containers, mutable globals.
//   unsafe-bytes         the untrusted-bytes taint rule: every byte
//                        parsed from disk or the network is hostile, so
//                        reinterpret_cast, memcpy and raw pointer
//                        arithmetic over wire buffers are confined to
//                        the allowlisted safe-cursor modules
//                        (util/bounded_reader.h, util/binary_io.*).
//   checked-arithmetic   the overflow rule on wire-derived integers:
//                        lengths/offsets/counts read off the wire must
//                        flow through CheckedAdd/CheckedMul/CheckedCast
//                        (util/checked.h), never raw `+`/`*` or
//                        narrowing casts.
//
// Escape hatch, per pass: `// NOLINT(<pass>)` on the reported line or
// `// NOLINTNEXTLINE(<pass>)` on the line above, always with a
// justification comment. A bare NOLINT suppresses nothing.
//
// The library is dependency-free (it does not link the code it lints);
// the `unidetect_lint` driver walks directories, selects passes with
// `--passes=`, prints findings, and writes a machine-readable JSON
// report.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace unidetect {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string pass;   // registry name, the NOLINT key
  std::string check;  // specific rule within the pass
  std::string message;
};

struct LintResult {
  std::vector<Finding> findings;
  int suppressed = 0;  // findings silenced by NOLINT(<pass>)
};

struct Options {
  /// The <random> primitives are allowed inside the one file that is
  /// supposed to own them (src/util/random.*).
  bool allow_random_primitives = false;
  /// The safe-cursor modules (util/bounded_reader.h, util/binary_io.*)
  /// own byte reinterpretation and cursor arithmetic; the unsafe-bytes
  /// and checked-arithmetic passes do not run over them.
  bool trusted_cursor_module = false;
};

/// \brief Per-path defaults: sets allow_random_primitives for
/// "util/random." paths and trusted_cursor_module for the safe-cursor
/// modules.
Options OptionsForPath(std::string_view path);

/// \brief Registered pass names, in execution order.
const std::vector<std::string>& PassNames();

/// \brief True when `name` is a registered pass.
bool IsPassName(std::string_view name);

/// \brief Lints one translation unit held in memory with the selected
/// passes (every registered pass when `passes` is empty).
LintResult LintSource(std::string_view path, std::string_view source,
                      const std::vector<std::string>& passes,
                      const Options& options);

/// \brief Convenience: all passes with OptionsForPath(path).
LintResult LintSource(std::string_view path, std::string_view source);

/// \brief Serializes findings as a JSON report:
/// {"files_scanned":N,"passes":[...],"suppressed":M,"findings":[{...}]}.
std::string ReportJson(size_t files_scanned,
                       const std::vector<std::string>& passes,
                       const LintResult& merged);

}  // namespace lint
}  // namespace unidetect
