// Determinism linter: a token-level static scanner for the
// nondeterminism bug classes that break Uni-Detect's byte-identical
// ranking contract (see DESIGN.md section 9).
//
// Checks:
//   unordered-iteration  iteration over an unordered container whose
//                        body appends to a string/stream/vector, with no
//                        subsequent sort in the enclosing block.
//   banned-source        std::rand/srand/time(nullptr)/... and the
//                        <random> engines outside src/util/random.*.
//   pointer-key          ordering or hashing keyed on pointer values
//                        (map<T*, ...>, set<T*>, hash<T*>, less<T*>).
//   mutable-global       non-const namespace-scope variables and
//                        `static` locals, unless const/constexpr, a
//                        synchronization type, or NOLINT'ed.
//
// Escape hatch: `// NOLINT(determinism)` on the reported line, or
// `// NOLINTNEXTLINE(determinism)` on the line above it.
//
// The library is dependency-free (it does not link the code it lints);
// the `determinism_lint` driver walks directories, prints findings, and
// writes a machine-readable JSON report.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace unidetect {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
};

struct LintResult {
  std::vector<Finding> findings;
  int suppressed = 0;  // findings silenced by NOLINT(determinism)
};

struct Options {
  /// The <random> primitives are allowed inside the one file that is
  /// supposed to own them (src/util/random.*).
  bool allow_random_primitives = false;
};

/// \brief Per-path defaults (sets allow_random_primitives for
/// paths containing "util/random.").
Options OptionsForPath(std::string_view path);

/// \brief Lints one translation unit held in memory.
LintResult LintSource(std::string_view path, std::string_view source,
                      const Options& options);

/// \brief Convenience: LintSource with OptionsForPath(path).
LintResult LintSource(std::string_view path, std::string_view source);

/// \brief Serializes findings as a JSON report:
/// {"files_scanned":N,"suppressed":M,"findings":[{...}]}.
std::string ReportJson(size_t files_scanned, const LintResult& merged);

}  // namespace lint
}  // namespace unidetect
