// The unsafe-bytes pass: confines raw byte reinterpretation to the
// safe-cursor modules. Every byte that reaches a decoder came off disk
// or the wire and is hostile until validated (DESIGN.md section 14), so
// outside util/bounded_reader.h and util/binary_io.* this pass flags:
//
//   wire-reinterpret     any reinterpret_cast. Type-punning a wire
//                        buffer without a bounds+alignment check is the
//                        canonical overlay-read bug; casts with trusted
//                        in-memory sources (SIMD lane loads, encoder
//                        appends) take NOLINT(unsafe-bytes) plus a
//                        justification.
//   wire-memcpy          memcpy/memmove calls. Copies out of a wire
//                        buffer belong behind BoundedReader::CopyArray,
//                        which pairs the copy with its bounds check.
//   wire-pointer-arith   indexing or offsetting an identifier that was
//                        initialized from a reinterpret_cast. A wire
//                        overlay needs the cast to exist at all, so
//                        flagging the cast plus arithmetic on its result
//                        covers overlay walking; plain `.data() + n` on
//                        owned containers (SIMD kernels, from_chars) is
//                        deliberately NOT flagged — wire offsets feeding
//                        such arithmetic are caught by the
//                        checked-arithmetic taint pass instead.
//
// The pass is deliberately coarse: it does not try to prove a source is
// untrusted, it asserts that untrusted-capable primitives live in one
// audited place. False positives are expected to be rare and explicit
// (NOLINT with a reason), not silently tolerated.

#include <string>
#include <unordered_set>
#include <vector>

#include "lint/lexer.h"
#include "lint/passes.h"

namespace unidetect {
namespace lint {

namespace {

// Identifiers on the left of `= reinterpret_cast<...>` — later pointer
// arithmetic on these is flagged even without a visible `.data()`.
std::unordered_set<std::string> CollectReinterpretedNames(
    const std::vector<Tok>& t) {
  std::unordered_set<std::string> names;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(IsIdent(t, i) && t[i].text == "reinterpret_cast")) continue;
    // Walk left past `=`, collecting the assigned identifier.
    if (i >= 2 && TokIs(t, i - 1, "=") && IsIdent(t, i - 2)) {
      names.insert(t[i - 2].text);
    }
  }
  return names;
}

}  // namespace

void RunUnsafeBytesPass(const Lexed& lexed, const PassContext& context,
                        std::vector<Finding>* findings) {
  if (context.options.trusted_cursor_module) return;
  const std::vector<Tok>& t = lexed.toks;
  auto emit = [&](int line, const char* check, std::string message) {
    findings->push_back(
        {context.file, line, kUnsafeBytesPass, check, std::move(message)});
  };

  const std::unordered_set<std::string> reinterpreted =
      CollectReinterpretedNames(t);

  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    const std::string& name = t[i].text;

    if (name == "reinterpret_cast") {
      emit(t[i].line, "wire-reinterpret",
           "reinterpret_cast outside the safe-cursor modules; route wire "
           "bytes through BoundedReader::Overlay / CopyArray "
           "(util/bounded_reader.h) or NOLINT(unsafe-bytes) with a "
           "justification for trusted in-memory sources");
      continue;
    }

    if (name == "memcpy" || name == "memmove") {
      // Only calls; `&memcpy` or declarations are not interesting and do
      // not occur in this codebase anyway.
      if (!TokIs(t, i + 1, "(")) continue;
      emit(t[i].line, "wire-memcpy",
           "raw " + name + " outside the safe-cursor modules; copies out "
           "of wire buffers belong behind BoundedReader::CopyArray, which "
           "pairs the copy with its bounds check");
      continue;
    }

    // Arithmetic on a pointer that came from a reinterpret_cast.
    if (reinterpreted.count(name) &&
        (TokIs(t, i + 1, "+") || TokIs(t, i + 1, "+=") ||
         TokIs(t, i + 1, "["))) {
      emit(t[i].line, "wire-pointer-arith",
           "arithmetic on '" + name + "', a reinterpret_cast-derived "
           "pointer; index through a bounds-checked span instead");
      continue;
    }
  }
}

}  // namespace lint
}  // namespace unidetect
