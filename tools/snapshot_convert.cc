// snapshot_convert: migrates model artifacts between on-disk formats.
//
//   $ snapshot_convert <model_in> [--to v1|v2] [--f16|--f32]
//                      [--out <path>] [--check]
//   $ snapshot_convert <compacted> --check --chain <base> [<delta>...]
//
// Reads any supported format (UDSNAP v1/v2 or the legacy text model)
// with full validation, re-encodes it in the requested format (default:
// v2, the current writer default), and writes the result. `--f16`
// quantizes the v2 observation/tree payloads to binary16 (halving the
// bulk bytes); `--f32` dequantizes an f16 snapshot back to full
// precision; neither flag preserves the input's storage width. Without
// `--out` the artifact is upgraded in place — via a temp file + rename
// so a crash mid-write never leaves a torn snapshot behind. `--check`
// re-decodes the written bytes and, for a v2 output, verifies that
// encode(decode(bytes)) reproduces the bytes exactly (the canonical-
// packing guarantee DESIGN.md section 12 promises).
//
// `--chain` switches to audit-only mode (nothing is written): the
// remaining arguments name a base snapshot and its delta artifacts in
// chain order. Each delta's manifest is verified against the artifacts
// actually on disk (base id, parent id, ascending depth), the layers
// are folded with Model::Merge, and the fold's canonical v2 encoding is
// byte-compared against <model_in> — the compacted artifact. Exit 0
// means the compaction faithfully folded exactly those layers.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "learn/model.h"
#include "model_format/delta_snapshot.h"
#include "model_format/model_snapshot.h"
#include "model_format/snapshot_v2.h"
#include "util/binary_io.h"
#include "util/logging.h"

using namespace unidetect;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: snapshot_convert <model_in> [--to v1|v2] "
               "[--f16|--f32] [--out <path>] [--check]\n"
               "       snapshot_convert <compacted> --check --chain "
               "<base> [<delta>...]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "snapshot_convert: %s\n", status.ToString().c_str());
  return 1;
}

const char* FormatName(std::string_view bytes) {
  if (!LooksLikeModelSnapshot(bytes)) return "legacy text";
  switch (SnapshotVersionOf(bytes)) {
    case 1:
      return "UDSNAP v1";
    case 2:
      return "UDSNAP v2";
    default:
      return "UDSNAP (unknown version)";
  }
}

/// \brief Audit-only mode: verifies that `compacted_path` is exactly the
/// Model::Merge fold of `layers` (base first, deltas in chain order).
int AuditChain(const std::string& compacted_path,
               const std::vector<std::string>& layers) {
  // The manifests must chain the on-disk artifacts by content hash —
  // the same checks ApplyDelta runs before stacking a layer.
  auto base_identity = ReadSnapshotIdentity(layers[0]);
  if (!base_identity.ok()) return Fail(base_identity.status());
  if (base_identity->manifest.has_value()) {
    return Fail(Status::InvalidArgument(
        "chain audit: first layer " + layers[0] +
        " is a delta artifact; the chain must start at its base"));
  }
  uint64_t parent_id = base_identity->artifact_id;
  for (size_t i = 1; i < layers.size(); ++i) {
    auto identity = ReadSnapshotIdentity(layers[i]);
    if (!identity.ok()) return Fail(identity.status());
    if (!identity->manifest.has_value()) {
      return Fail(Status::InvalidArgument(
          "chain audit: " + layers[i] + " carries no delta manifest"));
    }
    const DeltaManifest& manifest = *identity->manifest;
    if (manifest.base_id != base_identity->artifact_id ||
        manifest.parent_id != parent_id || manifest.depth != i) {
      return Fail(Status::InvalidArgument(
          "chain audit: " + layers[i] +
          " does not chain onto the preceding layers (wrong base, "
          "parent, or depth)"));
    }
    parent_id = identity->artifact_id;
  }

  // Fold with full validation and byte-compare the canonical encoding
  // against the compacted artifact.
  auto base = LoadModelFromFile(layers[0], SnapshotValidation::kFull);
  if (!base.ok()) return Fail(base.status());
  Model merged(base->options());
  merged.Merge(*base);
  for (size_t i = 1; i < layers.size(); ++i) {
    auto delta = LoadModelFromFile(layers[i], SnapshotValidation::kFull);
    if (!delta.ok()) return Fail(delta.status());
    merged.Merge(*delta);
  }
  merged.Finalize();
  const std::string encoded = EncodeModelSnapshotV2(merged);
  auto compacted = ReadFileToString(compacted_path);
  if (!compacted.ok()) return Fail(compacted.status());
  if (encoded != *compacted) {
    return Fail(Status::Corruption(
        "chain audit: " + compacted_path +
        " is not bit-identical to the Model::Merge fold of the " +
        std::to_string(layers.size()) + " layer(s)"));
  }
  std::printf("%s == fold of %zu layer(s) (%zu bytes) [chain verified]\n",
              compacted_path.c_str(), layers.size(), encoded.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  const std::string in_path = argv[1];
  std::string out_path = in_path;
  uint32_t to_version = 2;
  bool check = false;
  std::vector<std::string> chain;
  ObservationEncoding encoding = ObservationEncoding::kPreserve;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chain") == 0) {
      // Everything after --chain is a layer path, base first.
      for (++i; i < argc; ++i) chain.push_back(argv[i]);
      break;
    }
    if (std::strcmp(argv[i], "--to") == 0 && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "v1" || v == "1") {
        to_version = 1;
      } else if (v == "v2" || v == "2") {
        to_version = 2;
      } else {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--f16") == 0) {
      encoding = ObservationEncoding::kF16;
    } else if (std::strcmp(argv[i], "--f32") == 0) {
      encoding = ObservationEncoding::kF32;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      return Usage();
    }
  }
  if (!chain.empty()) return AuditChain(in_path, chain);
  if (to_version == 1 && encoding == ObservationEncoding::kF16) {
    std::fprintf(stderr,
                 "snapshot_convert: --f16 requires the v2 layout "
                 "(v1 stores full-precision observations only)\n");
    return 2;
  }

  auto original = ReadFileToString(in_path);
  if (!original.ok()) return Fail(original.status());
  const char* from_name = FormatName(*original);

  // Full validation on the way in: a conversion must never launder a
  // corrupt artifact into a fresh checksum.
  auto model = LoadModelFromFile(in_path, SnapshotValidation::kFull);
  if (!model.ok()) return Fail(model.status());

  const std::string encoded = to_version == 2
                                  ? EncodeModelSnapshotV2(*model, encoding)
                                  : EncodeModelSnapshotV1(*model);

  if (check) {
    auto redecoded = DecodeModelSnapshot(encoded, SnapshotValidation::kFull);
    if (!redecoded.ok()) return Fail(redecoded.status());
    // kPreserve re-encodes the decoded model in whatever width the file
    // carries, so this round trip is exact for f16 and f32 outputs alike.
    if (to_version == 2 &&
        EncodeModelSnapshotV2(*redecoded,
                              ObservationEncoding::kPreserve) != encoded) {
      return Fail(Status::Corruption(
          "snapshot_convert: v2 re-encode is not bit-identical"));
    }
  }

  // Write-then-rename keeps the in-place upgrade atomic: readers see
  // either the old artifact or the complete new one, never a prefix.
  const std::string tmp_path = out_path + ".tmp";
  Status status = WriteStringToFile(tmp_path, encoded);
  if (status.ok() && std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    status = Status::IOError("snapshot_convert: rename to " + out_path +
                             " failed");
  }
  if (!status.ok()) return Fail(status);

  std::printf("%s (%zu bytes, %s) -> %s (%zu bytes, UDSNAP v%u)%s\n",
              in_path.c_str(), original->size(), from_name, out_path.c_str(),
              encoded.size(), to_version, check ? " [checked]" : "");
  return 0;
}
